//! Checkpoint/resume for the bisimulation pipeline.
//!
//! Long-running checks lose work in three places: the two graph builds
//! and the refinement fixpoint. This module gives each a serializable
//! snapshot and stitches them into one umbrella [`Checkpoint`] for the
//! whole [`Checker`] pipeline, so a budget exhaustion, deadline,
//! cancellation, chaos injection or panicked worker surfaces as a typed
//! [`Interrupted`] carrying everything needed to continue:
//!
//! * [`GraphCheckpoint`] — an in-progress (or completed) FIFO graph
//!   build: committed states/edges/discards plus the pending queue.
//!   Resumed by [`Graph::resume_from`]; completed builds are bit-identical
//!   to straight [`Graph::build`]s.
//! * [`RefineCheckpoint`] — a refinement relation at a round boundary.
//!   Because all refinement engines are chaotic iterations of the same
//!   monotone transfer operator, any intermediate relation is a superset
//!   of the greatest fixpoint, so the relation (plus a round count for
//!   reporting) is the *whole* resumable state — valid for snapshots from
//!   any engine at any thread count. Resumed by
//!   [`crate::bisim::refine_resume`].
//! * [`Checkpoint`] — which phase the pipeline was in, with the completed
//!   prefix embedded, so [`Checker::resume_from`] is self-contained given
//!   the same defs/options/variant.
//!
//! All three serialise through a versioned line-based text format (and
//! serde, via the same concrete syntax as `bpi-core`'s impls), so
//! checkpoints survive process restarts and interner re-seeding.
//!
//! [`Checker::check_supervised`] closes the loop: it runs the pipeline
//! under [`bpi_semantics::supervise`], which isolates panics with
//! `catch_unwind`, grows the budget on retryable errors, resumes from the
//! last snapshot instead of restarting cold, and — when attempts run out —
//! returns a [`SupervisedVerdict::Inconclusive`] that still carries the
//! final checkpoint as a partial verdict.

use crate::bisim::{refine_budgeted, refine_resume, Checker, PairRelation, Variant};
use crate::graph::{shared_pool, Graph};
use bpi_core::action::Action;
use bpi_core::name::{Name, NameSet};
use bpi_core::syntax::P;
use bpi_obs::Value;
use bpi_semantics::budget::EngineError;
use bpi_semantics::checkpoint::{record_resume, CheckpointCfg, CheckpointSlot, Interrupted};
use bpi_semantics::normalize_state_cached;
use bpi_semantics::supervise::SuperviseError;
use std::collections::VecDeque;
use std::sync::Arc;

/// An in-progress (or completed) sequential FIFO graph build: everything
/// [`Graph::resume_from`] needs to continue without re-expanding a
/// committed state. `pending` is the FIFO work queue (front = next state
/// to expand); an empty queue means the build is complete.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphCheckpoint {
    /// Committed α-canonical states in discovery order.
    pub states: Vec<P>,
    /// Outgoing edges per committed state (empty for states still
    /// pending expansion).
    pub edges: Vec<Vec<(Action, usize)>>,
    /// Discarded pool channels per committed state.
    pub discarding: Vec<NameSet>,
    /// FIFO queue of states discovered but not yet expanded.
    pub pending: VecDeque<usize>,
    /// The global input pool of the build.
    pub pool: Vec<Name>,
}

impl GraphCheckpoint {
    /// The initial snapshot of a fresh build: the normalised seed state,
    /// queued.
    pub fn seed(seed: &P, pool: &[Name]) -> GraphCheckpoint {
        GraphCheckpoint {
            states: vec![normalize_state_cached(seed, None)],
            edges: vec![Vec::new()],
            discarding: vec![NameSet::new()],
            pending: VecDeque::from([0]),
            pool: pool.to_vec(),
        }
    }

    /// Snapshot of a **completed** build (used to embed a finished phase
    /// in the umbrella [`Checkpoint`]).
    pub fn of_graph(g: &Graph) -> GraphCheckpoint {
        GraphCheckpoint {
            states: g.states.clone(),
            edges: g.edges.clone(),
            discarding: g.discarding.clone(),
            pending: VecDeque::new(),
            pool: g.pool.clone(),
        }
    }

    /// Whether the build has no pending work left.
    pub fn complete(&self) -> bool {
        self.pending.is_empty()
    }

    /// Fraction-of-work hint: states committed so far.
    pub fn states_explored(&self) -> usize {
        self.states.len()
    }

    /// Serialises to the versioned line-based text format (see the
    /// `Display` impl; `from_text` inverts it).
    pub fn to_text(&self) -> String {
        self.to_string()
    }

    /// Parses the text format produced by [`GraphCheckpoint::to_text`].
    pub fn from_text(s: &str) -> Result<GraphCheckpoint, String> {
        s.parse()
    }
}

fn join_csv<T: std::fmt::Display>(xs: impl IntoIterator<Item = T>) -> String {
    let mut out = String::new();
    for (i, x) in xs.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out
}

fn names_csv(s: &str) -> Vec<Name> {
    s.split(',')
        .filter(|x| !x.is_empty())
        .map(Name::intern_raw)
        .collect()
}

/// The graph-checkpoint text format, one record per line, tab-separated:
///
/// ```text
/// bpi-graph-checkpoint/v1
/// pool<TAB>a,b,#w0
/// pending<TAB>3,4
/// state<TAB><process in concrete syntax>     (one per state, in order)
/// disc<TAB><state><TAB>a,b                   (one per non-empty set)
/// edge<TAB><src><TAB><label><TAB><dst>       (one per edge, in order)
/// ```
impl std::fmt::Display for GraphCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "bpi-graph-checkpoint/v1")?;
        writeln!(f, "pool\t{}", join_csv(self.pool.iter()))?;
        writeln!(f, "pending\t{}", join_csv(self.pending.iter()))?;
        for p in &self.states {
            writeln!(f, "state\t{p}")?;
        }
        for (i, d) in self.discarding.iter().enumerate() {
            if !d.is_empty() {
                writeln!(f, "disc\t{i}\t{}", join_csv(d.iter()))?;
            }
        }
        for (i, es) in self.edges.iter().enumerate() {
            for (act, j) in es {
                writeln!(f, "edge\t{i}\t{act}\t{j}")?;
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for GraphCheckpoint {
    type Err = String;

    fn from_str(s: &str) -> Result<GraphCheckpoint, String> {
        let mut lines = s.lines();
        if lines.next() != Some("bpi-graph-checkpoint/v1") {
            return Err("not a bpi-graph-checkpoint/v1 document".into());
        }
        fn field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, String> {
            let line = line.ok_or_else(|| format!("missing {key} record"))?;
            line.strip_prefix(key)
                .and_then(|r| r.strip_prefix('\t'))
                .ok_or_else(|| format!("expected {key} record, got {line:?}"))
        }
        let pool = names_csv(field(lines.next(), "pool")?);
        let pending: VecDeque<usize> = {
            let s = field(lines.next(), "pending")?;
            if s.is_empty() {
                VecDeque::new()
            } else {
                s.split(',')
                    .map(|x| x.parse().map_err(|e| format!("bad pending index: {e}")))
                    .collect::<Result<_, String>>()?
            }
        };
        let mut states: Vec<P> = Vec::new();
        let mut disc_lines: Vec<(usize, Vec<Name>)> = Vec::new();
        let mut edge_lines: Vec<(usize, Action, usize)> = Vec::new();
        for line in lines {
            if let Some(text) = line.strip_prefix("state\t") {
                if !disc_lines.is_empty() || !edge_lines.is_empty() {
                    return Err("state record after disc/edge records".into());
                }
                states.push(
                    bpi_core::parser::parse_process(text)
                        .map_err(|e| format!("bad state {text:?}: {e}"))?,
                );
            } else if let Some(rest) = line.strip_prefix("disc\t") {
                let (i, csv) = rest
                    .split_once('\t')
                    .ok_or("disc record missing name list")?;
                let i: usize = i.parse().map_err(|e| format!("bad disc state: {e}"))?;
                disc_lines.push((i, names_csv(csv)));
            } else if let Some(rest) = line.strip_prefix("edge\t") {
                let mut parts = rest.splitn(3, '\t');
                let src: usize = parts
                    .next()
                    .ok_or("edge missing source")?
                    .parse()
                    .map_err(|e| format!("bad edge source: {e}"))?;
                let act: Action = parts
                    .next()
                    .ok_or("edge missing label")?
                    .parse()
                    .map_err(|e| format!("bad edge label: {e}"))?;
                let dst: usize = parts
                    .next()
                    .ok_or("edge missing target")?
                    .parse()
                    .map_err(|e| format!("bad edge target: {e}"))?;
                edge_lines.push((src, act, dst));
            } else if !line.is_empty() {
                return Err(format!("unrecognised record {line:?}"));
            }
        }
        let n = states.len();
        let mut edges: Vec<Vec<(Action, usize)>> = vec![Vec::new(); n];
        for (src, act, dst) in edge_lines {
            if src >= n || dst >= n {
                return Err(format!("edge {src}->{dst} out of range ({n} states)"));
            }
            edges[src].push((act, dst));
        }
        let mut discarding: Vec<NameSet> = vec![NameSet::new(); n];
        for (i, names) in disc_lines {
            if i >= n {
                return Err(format!("disc record for state {i} out of range"));
            }
            discarding[i] = NameSet::from_iter(names);
        }
        if pending.iter().any(|&i| i >= n) {
            return Err("pending index out of range".into());
        }
        Ok(GraphCheckpoint {
            states,
            edges,
            discarding,
            pending,
            pool,
        })
    }
}

/// A refinement relation at a round boundary — the complete resumable
/// state of any refinement engine (see the module docs for why).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefineCheckpoint {
    /// The relation: `rel[i][j]` iff the pair still survives.
    pub rel: Vec<Vec<bool>>,
    /// Rounds completed when the snapshot was taken (reporting only —
    /// resumption correctness does not depend on it).
    pub rounds: u64,
}

impl RefineCheckpoint {
    /// Surviving pairs (diagnostics).
    pub fn survivors(&self) -> usize {
        self.rel
            .iter()
            .map(|row| row.iter().filter(|&&b| b).count())
            .sum()
    }

    pub fn to_text(&self) -> String {
        self.to_string()
    }

    pub fn from_text(s: &str) -> Result<RefineCheckpoint, String> {
        s.parse()
    }
}

/// The refine-checkpoint text format:
///
/// ```text
/// bpi-refine-checkpoint/v1
/// rounds<TAB>3
/// dims<TAB>4<TAB>5
/// row<TAB>10110                              (one per row, 1 = related)
/// ```
impl std::fmt::Display for RefineCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "bpi-refine-checkpoint/v1")?;
        writeln!(f, "rounds\t{}", self.rounds)?;
        let n2 = self.rel.first().map_or(0, |r| r.len());
        writeln!(f, "dims\t{}\t{}", self.rel.len(), n2)?;
        for row in &self.rel {
            let bits: String = row.iter().map(|&b| if b { '1' } else { '0' }).collect();
            writeln!(f, "row\t{bits}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for RefineCheckpoint {
    type Err = String;

    fn from_str(s: &str) -> Result<RefineCheckpoint, String> {
        let mut lines = s.lines();
        if lines.next() != Some("bpi-refine-checkpoint/v1") {
            return Err("not a bpi-refine-checkpoint/v1 document".into());
        }
        let rounds: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("rounds\t"))
            .ok_or("missing rounds record")?
            .parse()
            .map_err(|e| format!("bad rounds: {e}"))?;
        let (n1, n2) = {
            let dims = lines
                .next()
                .and_then(|l| l.strip_prefix("dims\t"))
                .ok_or("missing dims record")?;
            let (a, b) = dims.split_once('\t').ok_or("bad dims record")?;
            (
                a.parse::<usize>().map_err(|e| format!("bad dims: {e}"))?,
                b.parse::<usize>().map_err(|e| format!("bad dims: {e}"))?,
            )
        };
        let mut rel = Vec::with_capacity(n1);
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let bits = line
                .strip_prefix("row\t")
                .ok_or_else(|| format!("unrecognised record {line:?}"))?;
            if bits.len() != n2 {
                return Err(format!(
                    "row of width {} in a {n2}-column relation",
                    bits.len()
                ));
            }
            let row: Result<Vec<bool>, String> = bits
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    _ => Err(format!("bad relation bit {c:?}")),
                })
                .collect();
            rel.push(row?);
        }
        if rel.len() != n1 {
            return Err(format!("{} rows in a {n1}-row relation", rel.len()));
        }
        Ok(RefineCheckpoint { rel, rounds })
    }
}

/// A partition-refinement run at a round boundary: the block
/// assignment over the disjoint union of the two graphs plus the dirty
/// worklist — linear in the state count, unlike a pair relation. The
/// signature buckets are *not* serialized: signatures of clean states
/// are pure functions of the block array, so
/// [`crate::partition::refine_partition_resume`] rebuilds them and
/// replays the remaining rounds bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionCheckpoint {
    /// States of the first graph (union states `0..n1`).
    pub n1: usize,
    /// States of the second graph (union states `n1..n1 + n2`).
    pub n2: usize,
    /// Current block id per union state.
    pub blocks: Vec<u32>,
    /// Dirty states awaiting signature recomputation, in queue order.
    pub worklist: std::collections::VecDeque<u32>,
    /// Rounds completed when the snapshot was taken.
    pub rounds: u64,
    /// Splits performed when the snapshot was taken.
    pub splits: u64,
}

impl PartitionCheckpoint {
    pub fn to_text(&self) -> String {
        self.to_string()
    }

    pub fn from_text(s: &str) -> Result<PartitionCheckpoint, String> {
        s.parse()
    }
}

/// The partition-checkpoint text format:
///
/// ```text
/// bpi-partition-checkpoint/v1
/// dims<TAB>4<TAB>5
/// rounds<TAB>3
/// splits<TAB>2
/// blocks<TAB>0,1,0,2,…                      (block id per union state)
/// worklist<TAB>3,7                          (dirty states, queue order)
/// ```
impl std::fmt::Display for PartitionCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "bpi-partition-checkpoint/v1")?;
        writeln!(f, "dims\t{}\t{}", self.n1, self.n2)?;
        writeln!(f, "rounds\t{}", self.rounds)?;
        writeln!(f, "splits\t{}", self.splits)?;
        writeln!(f, "blocks\t{}", join_csv(self.blocks.iter()))?;
        writeln!(f, "worklist\t{}", join_csv(self.worklist.iter()))?;
        Ok(())
    }
}

impl std::str::FromStr for PartitionCheckpoint {
    type Err = String;

    fn from_str(s: &str) -> Result<PartitionCheckpoint, String> {
        fn u32s_csv(s: &str) -> Result<Vec<u32>, String> {
            s.split(',')
                .filter(|x| !x.is_empty())
                .map(|x| x.parse::<u32>().map_err(|e| format!("bad id {x:?}: {e}")))
                .collect()
        }
        let mut lines = s.lines();
        if lines.next() != Some("bpi-partition-checkpoint/v1") {
            return Err("not a bpi-partition-checkpoint/v1 document".into());
        }
        let (n1, n2) = {
            let dims = lines
                .next()
                .and_then(|l| l.strip_prefix("dims\t"))
                .ok_or("missing dims record")?;
            let (a, b) = dims.split_once('\t').ok_or("bad dims record")?;
            (
                a.parse::<usize>().map_err(|e| format!("bad dims: {e}"))?,
                b.parse::<usize>().map_err(|e| format!("bad dims: {e}"))?,
            )
        };
        let rounds: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("rounds\t"))
            .ok_or("missing rounds record")?
            .parse()
            .map_err(|e| format!("bad rounds: {e}"))?;
        let splits: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("splits\t"))
            .ok_or("missing splits record")?
            .parse()
            .map_err(|e| format!("bad splits: {e}"))?;
        let blocks = u32s_csv(
            lines
                .next()
                .and_then(|l| l.strip_prefix("blocks\t"))
                .ok_or("missing blocks record")?,
        )?;
        if blocks.len() != n1 + n2 {
            return Err(format!(
                "{} block entries for {n1}+{n2} union states",
                blocks.len()
            ));
        }
        let worklist: std::collections::VecDeque<u32> = u32s_csv(
            lines
                .next()
                .and_then(|l| l.strip_prefix("worklist\t"))
                .ok_or("missing worklist record")?,
        )?
        .into();
        if let Some(&bad) = worklist.iter().find(|&&u| u as usize >= n1 + n2) {
            return Err(format!("worklist state {bad} out of range"));
        }
        if let Some(extra) = lines.find(|l| !l.is_empty()) {
            return Err(format!("unrecognised record {extra:?}"));
        }
        Ok(PartitionCheckpoint {
            n1,
            n2,
            blocks,
            worklist,
            rounds,
            splits,
        })
    }
}

/// Where the [`Checker`] pipeline was interrupted, with the completed
/// prefix embedded — self-contained given the same defs, options and
/// variant.
#[derive(Clone, Debug, PartialEq)]
pub enum Checkpoint {
    /// Interrupted while building the left graph. Carries the right seed
    /// so resumption can start phase 2 without the original call's
    /// arguments.
    BuildLeft {
        left: GraphCheckpoint,
        right_seed: P,
    },
    /// Left graph complete; interrupted while building the right one.
    BuildRight {
        left: GraphCheckpoint,
        right: GraphCheckpoint,
    },
    /// Both graphs complete; interrupted at a refinement round boundary.
    Refine {
        left: GraphCheckpoint,
        right: GraphCheckpoint,
        refine: RefineCheckpoint,
    },
}

impl Checkpoint {
    /// Which pipeline phase the snapshot was taken in.
    pub fn phase(&self) -> &'static str {
        match self {
            Checkpoint::BuildLeft { .. } => "build_left",
            Checkpoint::BuildRight { .. } => "build_right",
            Checkpoint::Refine { .. } => "refine",
        }
    }

    /// States committed across both graphs.
    pub fn states_explored(&self) -> usize {
        match self {
            Checkpoint::BuildLeft { left, .. } => left.states_explored(),
            Checkpoint::BuildRight { left, right } | Checkpoint::Refine { left, right, .. } => {
                left.states_explored() + right.states_explored()
            }
        }
    }

    /// Refinement rounds completed (0 before the refine phase).
    pub fn rounds(&self) -> u64 {
        match self {
            Checkpoint::Refine { refine, .. } => refine.rounds,
            _ => 0,
        }
    }

    pub fn to_text(&self) -> String {
        self.to_string()
    }

    pub fn from_text(s: &str) -> Result<Checkpoint, String> {
        s.parse()
    }
}

/// The umbrella text format: a phase header, then the sub-documents in
/// `#section`-delimited blocks (their own versioned formats verbatim):
///
/// ```text
/// bpi-equiv-checkpoint/v1
/// phase<TAB>build_left
/// right_seed<TAB><process>                   (build_left only)
/// #section left
/// bpi-graph-checkpoint/v1
/// …
/// #section refine                            (refine only)
/// bpi-refine-checkpoint/v1
/// …
/// ```
impl std::fmt::Display for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "bpi-equiv-checkpoint/v1")?;
        writeln!(f, "phase\t{}", self.phase())?;
        match self {
            Checkpoint::BuildLeft { left, right_seed } => {
                writeln!(f, "right_seed\t{right_seed}")?;
                writeln!(f, "#section left")?;
                write!(f, "{left}")?;
            }
            Checkpoint::BuildRight { left, right } => {
                writeln!(f, "#section left")?;
                write!(f, "{left}")?;
                writeln!(f, "#section right")?;
                write!(f, "{right}")?;
            }
            Checkpoint::Refine {
                left,
                right,
                refine,
            } => {
                writeln!(f, "#section left")?;
                write!(f, "{left}")?;
                writeln!(f, "#section right")?;
                write!(f, "{right}")?;
                writeln!(f, "#section refine")?;
                write!(f, "{refine}")?;
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for Checkpoint {
    type Err = String;

    fn from_str(s: &str) -> Result<Checkpoint, String> {
        let mut lines = s.lines();
        if lines.next() != Some("bpi-equiv-checkpoint/v1") {
            return Err("not a bpi-equiv-checkpoint/v1 document".into());
        }
        let phase = lines
            .next()
            .and_then(|l| l.strip_prefix("phase\t"))
            .ok_or("missing phase record")?
            .to_string();
        let mut right_seed: Option<P> = None;
        let mut sections: Vec<(String, String)> = Vec::new();
        for line in lines {
            if let Some(name) = line.strip_prefix("#section ") {
                sections.push((name.to_string(), String::new()));
            } else if let Some((_, body)) = sections.last_mut() {
                body.push_str(line);
                body.push('\n');
            } else if let Some(p) = line.strip_prefix("right_seed\t") {
                right_seed = Some(
                    bpi_core::parser::parse_process(p)
                        .map_err(|e| format!("bad right_seed {p:?}: {e}"))?,
                );
            } else if !line.is_empty() {
                return Err(format!("unrecognised record {line:?}"));
            }
        }
        let section = |name: &str| -> Result<&str, String> {
            sections
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, b)| b.as_str())
                .ok_or_else(|| format!("missing #section {name}"))
        };
        match phase.as_str() {
            "build_left" => Ok(Checkpoint::BuildLeft {
                left: section("left")?.parse()?,
                right_seed: right_seed.ok_or("build_left checkpoint missing right_seed")?,
            }),
            "build_right" => Ok(Checkpoint::BuildRight {
                left: section("left")?.parse()?,
                right: section("right")?.parse()?,
            }),
            "refine" => Ok(Checkpoint::Refine {
                left: section("left")?.parse()?,
                right: section("right")?.parse()?,
                refine: section("refine")?.parse()?,
            }),
            other => Err(format!("unknown phase {other:?}")),
        }
    }
}

macro_rules! text_serde {
    ($ty:ident, $visitor:ident, $expecting:literal) => {
        impl serde::ser::Serialize for $ty {
            fn serialize<S: serde::ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.collect_str(self)
            }
        }

        struct $visitor;

        impl serde::de::Visitor<'_> for $visitor {
            type Value = $ty;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str($expecting)
            }
            fn visit_str<E: serde::de::Error>(self, v: &str) -> Result<$ty, E> {
                v.parse().map_err(E::custom)
            }
        }

        impl<'de> serde::de::Deserialize<'de> for $ty {
            fn deserialize<D: serde::de::Deserializer<'de>>(d: D) -> Result<$ty, D::Error> {
                d.deserialize_str($visitor)
            }
        }
    };
}

text_serde!(
    GraphCheckpoint,
    GraphCkptVisitor,
    "a bpi-graph-checkpoint/v1 document"
);
text_serde!(
    RefineCheckpoint,
    RefineCkptVisitor,
    "a bpi-refine-checkpoint/v1 document"
);
text_serde!(
    PartitionCheckpoint,
    PartitionCkptVisitor,
    "a bpi-partition-checkpoint/v1 document"
);
text_serde!(
    Checkpoint,
    EquivCkptVisitor,
    "a bpi-equiv-checkpoint/v1 document"
);

/// Relays the latest snapshot of an inner (per-phase) slot into the
/// pipeline-level slot on scope exit — **including unwinds**, so a
/// supervisor's `catch_unwind` still finds the freshest periodic snapshot
/// after a raw panic mid-phase.
struct Relay<'a, C> {
    inner: CheckpointSlot<C>,
    outer: Option<CheckpointSlot<Checkpoint>>,
    wrap: &'a dyn Fn(C) -> Checkpoint,
}

impl<C> Drop for Relay<'_, C> {
    fn drop(&mut self) {
        if let Some(outer) = &self.outer {
            if let Some(c) = self.inner.take() {
                outer.publish((self.wrap)(c));
            }
        }
    }
}

/// Derives a per-phase [`CheckpointCfg`] from the pipeline-level one:
/// same cadence, the *same shared* fuel cell (fuel counts pipeline units,
/// not per-phase units), and a fresh slot when the outer cfg has one.
fn inner_cfg<C>(outer: &CheckpointCfg<Checkpoint>, slot: &CheckpointSlot<C>) -> CheckpointCfg<C> {
    CheckpointCfg {
        every: outer.every,
        fuel: outer.fuel.clone(),
        slot: outer.slot.as_ref().map(|_| slot.clone()),
    }
}

/// Publishes an interruption's checkpoint to the pipeline slot (the
/// freshest snapshot always wins) and passes the error through.
fn publish_err(
    outer: &CheckpointCfg<Checkpoint>,
    i: Interrupted<Checkpoint>,
) -> Interrupted<Checkpoint> {
    if let Some(slot) = &outer.slot {
        slot.publish(i.checkpoint.clone());
    }
    i
}

/// Anytime answer of [`Checker::check_supervised`]: like
/// [`crate::bisim::Verdict`], but an inconclusive outcome carries the
/// partial work — the final checkpoint and how far it got — instead of
/// discarding it.
#[derive(Debug)]
pub enum SupervisedVerdict {
    /// The relation holds at the roots.
    Holds,
    /// The relation fails; the string names the variant and roots.
    Fails(String),
    /// Attempts ran out (or an unretryable stop arrived) before the
    /// fixpoint was reached.
    Inconclusive {
        /// The final stop reason (panics surface as
        /// [`EngineError::WorkerPanicked`], never an abort).
        error: EngineError,
        /// The last snapshot from any attempt — resumable later with
        /// [`Checker::resume_from`].
        checkpoint: Option<Box<Checkpoint>>,
        /// States committed across both graphs at that snapshot.
        states_explored: usize,
        /// Refinement rounds completed at that snapshot.
        rounds: u64,
    },
}

impl SupervisedVerdict {
    /// `true` only for [`SupervisedVerdict::Holds`].
    pub fn holds(&self) -> bool {
        matches!(self, SupervisedVerdict::Holds)
    }

    pub fn is_inconclusive(&self) -> bool {
        matches!(self, SupervisedVerdict::Inconclusive { .. })
    }
}

/// Snapshot cadence of [`Checker::check_supervised`]: every 256 pipeline
/// units (states committed in the build phases, rounds in refinement).
const SUPERVISED_EVERY: usize = 256;

impl<'d> Checker<'d> {
    /// [`Checker::try_fixpoint`] in checkpointed form: builds both graphs
    /// and refines, emitting periodic snapshots per `cfg` and returning
    /// any interruption as [`Interrupted`] with an umbrella
    /// [`Checkpoint`] in place of the bare error.
    ///
    /// Differences from the plain path, by design:
    /// * the global graph memo is **bypassed** (a memo hit would skip the
    ///   states a checkpoint must contain), and
    /// * graph builds run sequentially (the canonical FIFO order *is* the
    ///   checkpoint format); refinement still uses `self.threads`.
    ///
    /// Deterministic metrics are recorded once per completed phase, so an
    /// interrupted-and-resumed run leaves the same deterministic counter
    /// trail as a straight `run_with_checkpoint` call.
    pub fn run_with_checkpoint(
        &self,
        v: Variant,
        p: &P,
        q: &P,
        cfg: &CheckpointCfg<Checkpoint>,
    ) -> Result<(Arc<Graph>, Arc<Graph>, PairRelation), Interrupted<Checkpoint>> {
        let _span = bpi_obs::span("equiv.check", "run_with_checkpoint");
        let pool = shared_pool(p, q, self.opts.fresh_inputs);
        self.advance(
            v,
            Checkpoint::BuildLeft {
                left: GraphCheckpoint::seed(p, &pool),
                right_seed: q.clone(),
            },
            cfg,
        )
    }

    /// Continues [`Checker::run_with_checkpoint`] from a snapshot —
    /// typically under a grown budget after a
    /// [`EngineError::StateBudgetExceeded`], or in a fresh process after
    /// deserialising the checkpoint. The caller must supply the same
    /// variant, defs and options as the original run.
    pub fn resume_from(
        &self,
        v: Variant,
        ck: Checkpoint,
        cfg: &CheckpointCfg<Checkpoint>,
    ) -> Result<(Arc<Graph>, Arc<Graph>, PairRelation), Interrupted<Checkpoint>> {
        let _span = bpi_obs::span("equiv.check", "resume_from");
        record_resume("checker");
        bpi_obs::emit("equiv.check", "resumed", || {
            vec![
                ("phase", Value::from(ck.phase())),
                ("states", Value::from(ck.states_explored())),
            ]
        });
        self.advance(v, ck, cfg)
    }

    /// The pipeline proper: finish whichever phase the checkpoint is in,
    /// then the remaining ones.
    fn advance(
        &self,
        v: Variant,
        ck: Checkpoint,
        cfg: &CheckpointCfg<Checkpoint>,
    ) -> Result<(Arc<Graph>, Arc<Graph>, PairRelation), Interrupted<Checkpoint>> {
        let (g1, g2, left_done, right_done, refine_ck) = match ck {
            Checkpoint::BuildLeft { left, right_seed } => {
                let g1 = self.graph_phase(left, cfg, &|gck| Checkpoint::BuildLeft {
                    left: gck,
                    right_seed: right_seed.clone(),
                })?;
                let left_done = GraphCheckpoint::of_graph(&g1);
                let right = GraphCheckpoint::seed(&right_seed, &g1.pool);
                if let Some(slot) = &cfg.slot {
                    slot.publish(Checkpoint::BuildRight {
                        left: left_done.clone(),
                        right: right.clone(),
                    });
                }
                let g2 = self.graph_phase(right, cfg, &|gck| Checkpoint::BuildRight {
                    left: left_done.clone(),
                    right: gck,
                })?;
                let right_done = GraphCheckpoint::of_graph(&g2);
                (Arc::new(g1), Arc::new(g2), left_done, right_done, None)
            }
            Checkpoint::BuildRight { left, right } => {
                let g1 = Arc::new(Graph::from_complete_checkpoint(left.clone()));
                let g2 = self.graph_phase(right, cfg, &|gck| Checkpoint::BuildRight {
                    left: left.clone(),
                    right: gck,
                })?;
                let right_done = GraphCheckpoint::of_graph(&g2);
                (g1, Arc::new(g2), left, right_done, None)
            }
            Checkpoint::Refine {
                left,
                right,
                refine,
            } => {
                let g1 = Arc::new(Graph::from_complete_checkpoint(left.clone()));
                let g2 = Arc::new(Graph::from_complete_checkpoint(right.clone()));
                (g1, g2, left, right, Some(refine))
            }
        };
        let wrap = |rck: RefineCheckpoint| Checkpoint::Refine {
            left: left_done.clone(),
            right: right_done.clone(),
            refine: rck,
        };
        let slot: CheckpointSlot<RefineCheckpoint> = CheckpointSlot::new();
        let inner = inner_cfg(cfg, &slot);
        let relay = Relay {
            inner: slot,
            outer: cfg.slot.clone(),
            wrap: &wrap,
        };
        let r = match refine_ck {
            Some(rck) => refine_resume(v, &g1, &g2, self.threads, &self.budget, &inner, rck),
            None => refine_budgeted(v, &g1, &g2, self.threads, &self.budget, &inner),
        };
        match r {
            Ok(rel) => Ok((g1, g2, rel)),
            Err(i) => {
                // Drain the relay before publishing so the freshest
                // (error) snapshot wins in the pipeline slot.
                drop(relay);
                Err(publish_err(cfg, i.map(wrap)))
            }
        }
    }

    /// Runs (or finishes) one graph build phase, translating its
    /// snapshots and errors into umbrella checkpoints.
    fn graph_phase(
        &self,
        ck: GraphCheckpoint,
        cfg: &CheckpointCfg<Checkpoint>,
        wrap: &dyn Fn(GraphCheckpoint) -> Checkpoint,
    ) -> Result<Graph, Interrupted<Checkpoint>> {
        if ck.complete() {
            return Ok(Graph::from_complete_checkpoint(ck));
        }
        let slot: CheckpointSlot<GraphCheckpoint> = CheckpointSlot::new();
        let inner = inner_cfg(cfg, &slot);
        let relay = Relay {
            inner: slot,
            outer: cfg.slot.clone(),
            wrap,
        };
        match Graph::continue_build(ck, self.defs, self.opts, &self.budget, &inner) {
            Ok(g) => Ok(g),
            Err(i) => {
                drop(relay);
                Err(publish_err(cfg, i.map(wrap)))
            }
        }
    }

    /// [`Checker::check`] under supervision: worker panics are isolated
    /// (`catch_unwind`), retryable exhaustion grows the budget and
    /// **resumes from the last checkpoint** instead of re-exploring, and
    /// when `attempts` run out the verdict is an *anytime* partial answer
    /// carrying the final checkpoint.
    pub fn check_supervised(&self, v: Variant, p: &P, q: &P, attempts: usize) -> SupervisedVerdict {
        let _span = bpi_obs::span("equiv.check", "check_supervised");
        let r = bpi_semantics::supervise(self.budget.clone(), attempts, |budget, slot, resume| {
            let c = Checker {
                defs: self.defs,
                opts: self.opts,
                budget: budget.clone(),
                threads: self.threads,
            };
            let cfg = CheckpointCfg::periodic(SUPERVISED_EVERY, slot.clone());
            match resume {
                Some(ck) => c.resume_from(v, ck, &cfg),
                None => c.run_with_checkpoint(v, p, q, &cfg),
            }
        });
        let verdict = match r {
            Ok((g1, g2, rel)) => {
                if rel.holds(0, 0) {
                    SupervisedVerdict::Holds
                } else {
                    // The fixpoint is already in hand — extract the
                    // distinguishing experiment without re-running.
                    let why = crate::distinguish::explain_fixpoint(v, &g1, &g2, &rel.rel)
                        .map(|d| format!("{v:?} fails at the root pair: {d}"))
                        .unwrap_or_else(|| format!("{v:?} fails at the root pair"));
                    SupervisedVerdict::Fails(why)
                }
            }
            Err(SuperviseError {
                error, checkpoint, ..
            }) => SupervisedVerdict::Inconclusive {
                states_explored: checkpoint.as_ref().map_or(0, |c| c.states_explored()),
                rounds: checkpoint.as_ref().map_or(0, |c| c.rounds()),
                checkpoint: checkpoint.map(Box::new),
                error,
            },
        };
        bpi_obs::emit("equiv.check", "supervised_verdict", || {
            vec![
                ("variant", Value::from(format!("{v:?}"))),
                (
                    "verdict",
                    Value::from(match &verdict {
                        SupervisedVerdict::Holds => "holds".to_string(),
                        SupervisedVerdict::Fails(_) => "fails".to_string(),
                        SupervisedVerdict::Inconclusive { error, .. } => {
                            format!("inconclusive: {error}")
                        }
                    }),
                ),
            ]
        });
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::Verdict;
    use crate::graph::Opts;
    use bpi_core::builder::*;
    use bpi_core::syntax::Defs;
    use bpi_semantics::Budget;

    fn sample_graph_ckpt() -> GraphCheckpoint {
        let d = Defs::new();
        let [a, b, x] = names(["a", "b", "x"]);
        let p = par(out_(a, [b]), inp(a, [x], out_(x, [])));
        let pool = shared_pool(&p, &nil(), 1);
        let g = Graph::build(&p, &d, &pool, Opts::default()).unwrap();
        GraphCheckpoint::of_graph(&g)
    }

    #[test]
    fn graph_checkpoint_text_roundtrip() {
        use serde::de::value::{Error as ValueError, StrDeserializer};
        use serde::de::{Deserialize, IntoDeserializer};
        let ck = sample_graph_ckpt();
        let text = ck.to_text();
        let back = GraphCheckpoint::from_text(&text).unwrap();
        assert_eq!(ck, back);
        assert!(back.complete());
        // Serde serialises through `collect_str(self)`, i.e. exactly the
        // text format; deserialise the text back through serde too.
        let d: StrDeserializer<'_, ValueError> = text.as_str().into_deserializer();
        assert_eq!(GraphCheckpoint::deserialize(d).unwrap(), ck);
    }

    #[test]
    fn refine_checkpoint_text_roundtrip() {
        let ck = RefineCheckpoint {
            rel: vec![vec![true, false, true], vec![false, false, true]],
            rounds: 7,
        };
        let back = RefineCheckpoint::from_text(&ck.to_text()).unwrap();
        assert_eq!(ck, back);
        assert_eq!(back.survivors(), 3);
    }

    #[test]
    fn partition_checkpoint_text_roundtrip() {
        let ck = PartitionCheckpoint {
            n1: 3,
            n2: 2,
            blocks: vec![0, 1, 0, 2, 1],
            worklist: std::collections::VecDeque::from([4, 0]),
            rounds: 5,
            splits: 2,
        };
        let back = PartitionCheckpoint::from_text(&ck.to_text()).unwrap();
        assert_eq!(ck, back);
        // An empty worklist (quiescent snapshot) roundtrips too.
        let quiescent = PartitionCheckpoint {
            worklist: std::collections::VecDeque::new(),
            ..ck
        };
        let back = PartitionCheckpoint::from_text(&quiescent.to_text()).unwrap();
        assert_eq!(quiescent, back);
    }

    #[test]
    fn partition_checkpoint_rejects_malformed_documents() {
        for bad in [
            "",
            "bpi-partition-checkpoint/v2\ndims\t1\t1",
            "bpi-partition-checkpoint/v1\ndims\t1\t1\nrounds\t0\nsplits\t0\nblocks\t0\nworklist\t",
            "bpi-partition-checkpoint/v1\ndims\t2\t0\nrounds\t0\nsplits\t0\nblocks\t0,0\nworklist\t7",
            "bpi-partition-checkpoint/v1\ndims\t2\t0\nrounds\t0\nsplits\t0\nblocks\t0,x\nworklist\t",
            "bpi-partition-checkpoint/v1\ndims\t2\t0\nrounds\t0\nsplits\t0\nblocks\t0,0\nworklist\t\njunk\trecord",
        ] {
            assert!(
                PartitionCheckpoint::from_text(bad).is_err(),
                "accepted malformed document {bad:?}"
            );
        }
    }

    #[test]
    fn umbrella_checkpoint_text_roundtrip_all_phases() {
        let left = sample_graph_ckpt();
        let [a] = names(["a"]);
        let cks = [
            Checkpoint::BuildLeft {
                left: left.clone(),
                right_seed: tau(out_(a, [])),
            },
            Checkpoint::BuildRight {
                left: left.clone(),
                right: GraphCheckpoint::seed(&nil(), &left.pool),
            },
            Checkpoint::Refine {
                left: left.clone(),
                right: left.clone(),
                refine: RefineCheckpoint {
                    rel: vec![vec![true; left.states.len()]; left.states.len()],
                    rounds: 2,
                },
            },
        ];
        for ck in cks {
            let back = Checkpoint::from_text(&ck.to_text()).unwrap();
            assert_eq!(ck, back, "phase {} did not roundtrip", ck.phase());
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "bpi-graph-checkpoint/v2\npool\t\npending\t",
            "bpi-graph-checkpoint/v1\npool\t\npending\t0", // pending out of range
            "bpi-refine-checkpoint/v1\nrounds\t1\ndims\t1\t2\nrow\t1",
            "bpi-equiv-checkpoint/v1\nphase\tnonsense",
            "bpi-equiv-checkpoint/v1\nphase\tbuild_left\n#section left\nbpi-graph-checkpoint/v1\npool\t\npending\t",
        ] {
            assert!(
                Checkpoint::from_text(bad).is_err()
                    || GraphCheckpoint::from_text(bad).is_err()
                        && RefineCheckpoint::from_text(bad).is_err(),
                "accepted malformed document {bad:?}"
            );
        }
    }

    #[test]
    fn checkpointed_pipeline_matches_plain_checker() {
        let d = Defs::new();
        let [a, b] = names(["a", "b"]);
        let p = out(a, [b], tau(out_(b, [])));
        let q = out(a, [b], out_(b, []));
        let c = Checker::new(&d);
        for v in [Variant::StrongLabelled, Variant::WeakLabelled] {
            let (_, _, rel) = c
                .run_with_checkpoint(v, &p, &q, &CheckpointCfg::default())
                .expect("unbudgeted run cannot be interrupted");
            let plain = c.check(v, &p, &q);
            assert_eq!(
                rel.holds(0, 0),
                plain == Verdict::Holds,
                "{v:?} verdict diverged from the plain checker"
            );
        }
    }

    #[test]
    fn budget_exhaustion_checkpoints_and_resumes_to_the_same_verdict() {
        // BPump(a) has an unbounded graph: a small ceiling interrupts the
        // left build with a resumable snapshot; nil vs nil under a small
        // fuel interrupts later phases too.
        let d = Defs::new();
        let [a, b] = names(["a", "b"]);
        let p = out(a, [b], tau(out_(b, [])));
        let q = out(a, [b], out_(b, []));
        let c = Checker::new(&d).with_budget(Budget::states(2));
        let err =
            match c.run_with_checkpoint(Variant::StrongLabelled, &p, &q, &CheckpointCfg::default())
            {
                Err(i) => i,
                Ok(_) => panic!("a 2-state ceiling must interrupt"),
            };
        assert_eq!(
            err.error,
            EngineError::StateBudgetExceeded { limit: 2 },
            "typed error must surface inside Interrupted"
        );
        // Resume under a sufficient budget — straight to the answer.
        let c2 = Checker::new(&d);
        let (_, _, rel) = c2
            .resume_from(
                Variant::StrongLabelled,
                err.checkpoint,
                &CheckpointCfg::default(),
            )
            .expect("resume under an unlimited budget completes");
        assert_eq!(
            rel.holds(0, 0),
            c2.check(Variant::StrongLabelled, &p, &q) == Verdict::Holds
        );
    }

    #[test]
    fn supervised_check_escalates_to_a_verdict() {
        let d = Defs::new();
        let [a, b] = names(["a", "b"]);
        let p = out(a, [b], tau(out_(b, [])));
        let q = out(a, [b], out_(b, []));
        // Budget far too small; the supervisor doubles it per attempt and
        // resumes from the checkpoint until the answer lands.
        let c = Checker::new(&d).with_budget(Budget::states(1));
        let verdict = c.check_supervised(Variant::WeakLabelled, &p, &q, 8);
        assert!(verdict.holds(), "got {verdict:?}");
        // With one attempt the same budget is an anytime partial verdict
        // carrying a checkpoint, never a panic.
        let v1 = c.check_supervised(Variant::WeakLabelled, &p, &q, 1);
        match v1 {
            SupervisedVerdict::Inconclusive {
                error, checkpoint, ..
            } => {
                assert_eq!(error, EngineError::StateBudgetExceeded { limit: 1 });
                assert!(checkpoint.is_some(), "exhaustion must keep the checkpoint");
            }
            other => panic!("expected Inconclusive, got {other:?}"),
        }
    }
}
