//! The congruences of Section 4.
//!
//! Strong labelled bisimilarity `~` is *not* preserved by choice,
//! substitution or prefixing (Remark 3), so the paper defines:
//!
//! * `~₊` (Definition 11) — one transfer step each way, with residuals in
//!   `~`;
//! * `~c` — `p ~c q` iff `pσ ~₊ qσ` for **all** substitutions σ.
//!
//! Theorem 2 shows `~c` is a congruence, and Theorem 3 that it coincides
//! with barbed congruence. The ∀σ quantification is decided finitely:
//! every substitution factors as an identification of free names followed
//! by an injective renaming (Lemma 17.1), and injective renamings
//! preserve `~₊` (Lemma 18) — so checking the collapsing substitutions of
//! all partitions of `fn(p, q)` suffices
//! ([`crate::graph::identification_substs`]).
//!
//! The weak counterparts (Definitions 14–15, Theorems 4–5) are also
//! provided; the paper defers their axiomatisation to future work, and so
//! do we.

use crate::bisim::{refine_auto, Checker, RelView, Variant};
use crate::graph::{identification_substs, shared_pool, Graph, Opts};
use bpi_core::syntax::{Defs, P};
use bpi_semantics::budget::{Budget, EngineError};
use parking_lot::Mutex;

/// One strict transfer step: every move of `(ga, i)` — including inputs —
/// is matched by a move of `(gb, j)` carrying the **same label**, with
/// residuals in `rel`.
///
/// This is where `~₊` differs from plain `~`: in `~` an input may be
/// matched by a discard (the `a(b)?` convention), which is exactly what
/// makes `~` fail to be preserved by `+` (Remark 3 — `a ~ b` for input
/// prefixes, yet `a + c̄ ≁ b + c̄`). Requiring a *real* same-label match
/// for the first step restores closure under choice; discards then agree
/// automatically by the receive-xor-discard dichotomy and symmetry.
fn strict_dir(ga: &Graph, i: usize, gb: &Graph, j: usize, rel: RelView<'_>) -> bool {
    use bpi_core::action::Action;
    for (lid, i2) in ga.edge_ids(i) {
        let act = ga.label(lid);
        let matched = match act {
            Action::Tau => gb.tau_succs(j).any(|j2| rel.holds(i2, j2)),
            _ => match gb.csr().label_id(act) {
                Some(bl) => gb.edge_ids(j).any(|(l, j2)| l == bl && rel.holds(i2, j2)),
                None => false,
            },
        };
        if !matched {
            return false;
        }
    }
    true
}

/// `p ~₊ q` (Definition 11): every strong move of `p` is matched by a
/// same-label strong move of `q` with residuals strongly bisimilar, and
/// vice versa. `Err` when the graphs exceed `opts.max_states`.
pub fn try_sim_plus(p: &P, q: &P, defs: &Defs, opts: Opts) -> Result<bool, EngineError> {
    let c = Checker::with_opts(defs, opts);
    let (g1, g2, rel) = c.try_fixpoint(Variant::StrongLabelled, p, q)?;
    Ok(strict_dir(&g1, 0, &g2, 0, RelView::new(&rel.rel, false))
        && strict_dir(&g2, 0, &g1, 0, RelView::new(&rel.rel, true)))
}

/// Bool convenience for [`try_sim_plus`]; resource exhaustion degrades to
/// `false` (the relation could not be certified).
pub fn sim_plus(p: &P, q: &P, defs: &Defs, opts: Opts) -> bool {
    try_sim_plus(p, q, defs, opts).unwrap_or(false)
}

/// Evaluates `check` on every identification-substitution instance of
/// `(p, q)`, fanning the instances out across crossbeam workers when
/// `threads > 1` (the instances are independent bisimilarity problems,
/// and the graph memo deduplicates shared builds across them).
///
/// The merged answer equals the sequential in-order sweep's: outcomes
/// are scanned in generation order and the first non-`Ok(true)` wins,
/// so a later failure or error can never shadow an earlier one.
fn sweep_substs<F>(p: &P, q: &P, threads: usize, check: F) -> Result<bool, EngineError>
where
    F: Fn(&P, &P) -> Result<bool, EngineError> + Sync,
{
    let fns = p.free_names().union(&q.free_names());
    let instances: Vec<(P, P)> = identification_substs(&fns)
        .into_iter()
        .map(|s| (s.apply_process(p), s.apply_process(q)))
        .collect();
    if threads <= 1 || instances.len() <= 1 {
        for (ps, qs) in &instances {
            if !check(ps, qs)? {
                return Ok(false);
            }
        }
        return Ok(true);
    }
    let chunk = instances.len().div_ceil(threads);
    let slots: Vec<Mutex<Vec<Result<bool, EngineError>>>> = instances
        .chunks(chunk)
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    let joined = crossbeam::scope(|s| {
        for (part, slot) in instances.chunks(chunk).zip(&slots) {
            let check = &check;
            s.spawn(move |_| {
                bpi_semantics::chaos::worker_tick("equiv.congruence.sweep");
                let out: Vec<_> = part.iter().map(|(ps, qs)| check(ps, qs)).collect();
                *slot.lock() = out;
            });
        }
    });
    if joined.is_err() {
        // A sweep worker died (chaos-injected or real). The sweep is a
        // pure conjunction over independent instances, so the in-order
        // sequential pass is the canonical answer — recover on it
        // instead of aborting the process.
        bpi_obs::emit("equiv.congruence", "sweep_recovered", || {
            vec![("instances", bpi_obs::Value::from(instances.len()))]
        });
        for (ps, qs) in &instances {
            if !check(ps, qs)? {
                return Ok(false);
            }
        }
        return Ok(true);
    }
    for slot in slots {
        for r in slot.into_inner() {
            if !r? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// `p ~c q`: `pσ ~₊ qσ` for all substitutions, decided over the
/// identification substitutions of `fn(p, q)`. `Err` when any instance
/// exhausts the state budget.
pub fn try_congruent_strong(p: &P, q: &P, defs: &Defs, opts: Opts) -> Result<bool, EngineError> {
    try_congruent_strong_threads(p, q, defs, opts, bpi_semantics::default_threads())
}

/// [`try_congruent_strong`] with an explicit worker-thread count for the
/// substitution sweep. Same answer at every thread count.
pub fn try_congruent_strong_threads(
    p: &P,
    q: &P,
    defs: &Defs,
    opts: Opts,
    threads: usize,
) -> Result<bool, EngineError> {
    sweep_substs(p, q, threads, |ps, qs| try_sim_plus(ps, qs, defs, opts))
}

/// Bool convenience for [`try_congruent_strong`]; exhaustion → `false`.
pub fn congruent_strong(p: &P, q: &P, defs: &Defs, opts: Opts) -> bool {
    try_congruent_strong(p, q, defs, opts).unwrap_or(false)
}

/// One direction of the weak `≈₊` transfer (Definition 15): strong moves
/// of `(ga, i)` matched weakly by `(gb, j)` into `rel`, with
///
/// * a `τ` move matched by **at least one** `τ` (as for observational
///   congruence — required for closure under `+`),
/// * outputs and inputs matched by weak *same-label* transitions
///   (`⇒ —α→ ⇒`), and
/// * a discard of `a` matched by a weak discard of `a` (condition 4).
fn weak_plus_dir(ga: &Graph, i: usize, gb: &Graph, j: usize, rel: RelView<'_>) -> bool {
    use bpi_core::action::Action;
    for (lid, i2) in ga.edge_ids(i) {
        let act = ga.label(lid);
        let matched = match act {
            Action::Tau => {
                // q =τ⇒ q' with at least one step.
                ga_tau_plus(gb, j).iter().any(|&j2| rel.holds(i2, j2))
            }
            Action::Output { .. } | Action::Input { .. } => {
                gb.weak_label(j, act).iter().any(|&j2| rel.holds(i2, j2))
            }
            Action::Discard { .. } => true,
        };
        if !matched {
            return false;
        }
    }
    // Condition 4: p —a:→ requires q ⇒ —a:→ ⇒ with a related residual.
    for a in &ga.discarding[i] {
        if !gb.weak_discard(j, a).iter().any(|&j2| rel.holds(i, j2)) {
            return false;
        }
    }
    true
}

/// States reachable by **one or more** τ steps from `j`.
fn ga_tau_plus(g: &Graph, j: usize) -> std::collections::BTreeSet<usize> {
    let mut out = std::collections::BTreeSet::new();
    for j1 in g.tau_succs(j) {
        out.extend(g.tau_closure(j1).iter().copied());
    }
    out
}

/// `p ≈₊ q` (Definition 15): one weak transfer step each way into `≈`.
/// `Err` when the graphs exceed `opts.max_states`.
pub fn try_weak_sim_plus(p: &P, q: &P, defs: &Defs, opts: Opts) -> Result<bool, EngineError> {
    let pool = shared_pool(p, q, opts.fresh_inputs);
    let budget = Budget::unlimited();
    let g1 = Graph::build_cached(p, defs, &pool, opts, &budget)?;
    let g2 = Graph::build_cached(q, defs, &pool, opts, &budget)?;
    let rel = refine_auto(Variant::WeakLabelled, &g1, &g2, 1);
    Ok(weak_plus_dir(&g1, 0, &g2, 0, RelView::new(&rel.rel, false))
        && weak_plus_dir(&g2, 0, &g1, 0, RelView::new(&rel.rel, true)))
}

/// Bool convenience for [`try_weak_sim_plus`]; exhaustion → `false`.
pub fn weak_sim_plus(p: &P, q: &P, defs: &Defs, opts: Opts) -> bool {
    try_weak_sim_plus(p, q, defs, opts).unwrap_or(false)
}

/// `p ≈c q`: `pσ ≈₊ qσ` for all identification substitutions. `Err` when
/// any instance exhausts the state budget.
pub fn try_congruent_weak(p: &P, q: &P, defs: &Defs, opts: Opts) -> Result<bool, EngineError> {
    try_congruent_weak_threads(p, q, defs, opts, bpi_semantics::default_threads())
}

/// [`try_congruent_weak`] with an explicit worker-thread count for the
/// substitution sweep. Same answer at every thread count.
pub fn try_congruent_weak_threads(
    p: &P,
    q: &P,
    defs: &Defs,
    opts: Opts,
    threads: usize,
) -> Result<bool, EngineError> {
    sweep_substs(p, q, threads, |ps, qs| {
        try_weak_sim_plus(ps, qs, defs, opts)
    })
}

/// Bool convenience for [`try_congruent_weak`]; exhaustion → `false`.
pub fn congruent_weak(p: &P, q: &P, defs: &Defs, opts: Opts) -> bool {
    try_congruent_weak(p, q, defs, opts).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::strong_bisimilar;
    use bpi_core::builder::*;
    use bpi_core::subst::Subst;

    fn d() -> Defs {
        Defs::new()
    }

    fn o() -> Opts {
        Opts::default()
    }

    #[test]
    fn remark3_choice_breaks_plain_bisim() {
        // ā ~ b̄... is false (labels differ); the paper's Remark 3 writes
        // a ~ b for *input* prefixes: a.nil ~ b.nil holds because inputs
        // are matched by discards, yet a + c̄ ≁ b + c̄.
        let defs = d();
        let [a, b, c, x] = names(["a", "b", "c", "x"]);
        let pa = inp_(a, [x]);
        let pb = inp_(b, [x]);
        assert!(
            strong_bisimilar(&pa, &pb, &defs),
            "a ~ b (inputs invisible)"
        );
        let pac = sum(pa.clone(), out_(c, []));
        let pbc = sum(pb.clone(), out_(c, []));
        assert!(
            !strong_bisimilar(&pac, &pbc, &defs),
            "a + c̄ ≁ b + c̄ (Remark 3)"
        );
        // And ~₊ already repairs this one-step defect:
        assert!(!sim_plus(&pa, &pb, &defs, o()), "a ≁₊ b");
    }

    #[test]
    fn remark3_substitution_breaks_plain_bisim() {
        // Witness in the spirit of Remark 3: with x, y distinct free
        // names, p = (x=y)c̄ behaves as nil — so p ~ nil — but
        // identifying x and y awakens the match: p[x/y] = (x=x)c̄ ≁ nil.
        let defs = d();
        let [x, y, c] = names(["x", "y", "c"]);
        let p = mat_(x, y, out_(c, []));
        let q = nil();
        assert!(strong_bisimilar(&p, &q, &defs), "(x=y)c̄ ~ nil while x ≠ y");
        let s = Subst::single(y, x);
        let ps = s.apply_process(&p);
        let qs = s.apply_process(&q);
        assert!(!strong_bisimilar(&ps, &qs, &defs), "p[x/y] ≁ q[x/y]");
        // Hence ~c (which quantifies over substitutions) separates them.
        assert!(!congruent_strong(&p, &q, &defs, o()));
        // And ~ is therefore not preserved by (input) prefixing either:
        // a(y).p receives x and becomes p[x/y].
        let a = bpi_core::Name::new("a");
        let pp = inp(a, [y], p);
        let qq = inp(a, [y], q);
        assert!(!strong_bisimilar(&pp, &qq, &defs), "prefix closure fails");
    }

    #[test]
    fn remark4_inclusions_are_strict() {
        let defs = d();
        // ~c ⊊ ~₊ : the match witness is ~₊ (no first move on either
        // side) but not ~c.
        let [x, y, c] = names(["x", "y", "c"]);
        let p = mat_(x, y, out_(c, []));
        let q = nil();
        assert!(sim_plus(&p, &q, &defs, o()), "p ~₊ q");
        assert!(!congruent_strong(&p, &q, &defs, o()), "p ≁c q");
        // ~₊ ⊊ ~ : a ~ b (inputs are invisible to ~) but a ≁₊ b (the
        // first input must be matched by a real input in ~₊).
        let [a, b, xx] = names(["a", "b", "xq"]);
        let pa = inp_(a, [xx]);
        let pb = inp_(b, [xx]);
        assert!(strong_bisimilar(&pa, &pb, &defs));
        assert!(!sim_plus(&pa, &pb, &defs, o()));
    }

    #[test]
    fn congruence_closed_under_operators_samples() {
        // Spot-check Lemma 13 on a pair that IS ~c: p ‖ nil ~c p.
        let defs = d();
        let [a, b, x] = names(["a", "b", "x"]);
        let p = sum(out(a, [b], nil()), inp_(a, [x]));
        let pn = par(p.clone(), nil());
        assert!(congruent_strong(&p, &pn, &defs, o()));
        // Closure under prefix, sum, restriction, parallel:
        let contexts: Vec<(P, P)> = vec![
            (tau(p.clone()), tau(pn.clone())),
            (sum(p.clone(), out_(b, [])), sum(pn.clone(), out_(b, []))),
            (new(b, p.clone()), new(b, pn.clone())),
            (par(p.clone(), out_(b, [])), par(pn.clone(), out_(b, []))),
            (inp(b, [x], p.clone()), inp(b, [x], pn.clone())),
        ];
        for (cp, cq) in contexts {
            assert!(
                congruent_strong(&cp, &cq, &defs, o()),
                "congruence broken for {cp} vs {cq}"
            );
        }
    }

    #[test]
    fn weak_congruence_distinguishes_initial_tau() {
        // τ.ā ≈ ā but τ.ā ≉c ā (initial τ must be matched by ≥1 τ),
        // exactly as for CCS observational congruence.
        let defs = d();
        let a = bpi_core::Name::new("a");
        let p = tau(out_(a, []));
        let q = out_(a, []);
        assert!(crate::bisim::weak_bisimilar(&p, &q, &defs));
        assert!(!weak_sim_plus(&p, &q, &defs, o()));
        // And in a + context they really differ:
        let b = bpi_core::Name::new("b");
        let pc = sum(p, out_(b, []));
        let qc = sum(q, out_(b, []));
        assert!(!crate::bisim::weak_bisimilar(&pc, &qc, &defs));
    }

    #[test]
    fn weak_congruence_accepts_internal_tau() {
        // ā.τ.b̄ ≈c ā.b̄.
        let defs = d();
        let [a, b] = names(["a", "b"]);
        let p = out(a, [], tau(out_(b, [])));
        let q = out(a, [], out_(b, []));
        assert!(congruent_weak(&p, &q, &defs, o()));
    }

    #[test]
    fn parallel_sweep_matches_sequential_verdicts() {
        // The fan-out over identification substitutions must return the
        // sequential answer at every thread count, on both a congruent
        // and a non-congruent pair.
        let defs = d();
        let [x, y, c] = names(["x", "y", "c"]);
        let cases: Vec<(P, P)> = vec![
            (mat_(x, y, out_(c, [])), nil()),
            (par(out_(c, []), nil()), out_(c, [])),
        ];
        for (p, q) in &cases {
            let seq_s = try_congruent_strong_threads(p, q, &defs, o(), 1).unwrap();
            let seq_w = try_congruent_weak_threads(p, q, &defs, o(), 1).unwrap();
            for threads in [2, 4, 8] {
                assert_eq!(
                    try_congruent_strong_threads(p, q, &defs, o(), threads).unwrap(),
                    seq_s,
                    "strong sweep diverged at {threads} threads on {p} vs {q}"
                );
                assert_eq!(
                    try_congruent_weak_threads(p, q, &defs, o(), threads).unwrap(),
                    seq_w,
                    "weak sweep diverged at {threads} threads on {p} vs {q}"
                );
            }
        }
    }

    #[test]
    fn noisy_law_is_congruent() {
        // Axiom (H) semantically: ā.p ~c ā.(p + a(x).p) when x ∉ fn(p)
        // and p does not listen on a. Take p = b̄.
        let defs = d();
        let [a, b, x] = names(["a", "b", "x"]);
        let p = out_(b, []);
        let lhs = out(a, [], p.clone());
        let rhs = out(a, [], sum(p.clone(), inp(a, [x], p.clone())));
        assert!(congruent_strong(&lhs, &rhs, &defs, o()), "(H) must hold");
    }
}
