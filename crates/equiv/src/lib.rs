//! # bpi-equiv — behavioural equivalences for the bπ-calculus
//!
//! Implements Sections 3 and 4 of Ene & Muntean (2001):
//!
//! * [`graph`] — finite, pool-instantiated, label-normalised transition
//!   graphs used by all checkers;
//! * [`bisim`] — barbed (Def. 3), step (Def. 5) and labelled (Defs. 7–8)
//!   bisimilarity, strong and weak, by greatest-fixpoint pair refinement;
//! * [`epsilon`] — ε-approximate bisimilarity and bisimulation
//!   distances: the quantitative relaxation of all six relations used
//!   alongside the probabilistic fault model, with the exact engines
//!   kept as the ε = 0 oracle;
//! * [`partition`] — the coarsest-partition (block/splitter) refiner:
//!   near-linear equivalence checking over the union graph for all six
//!   variants, plus [`partition::quotient`] minimization;
//! * [`congruence`] — `~₊` (Def. 11), the strong congruence `~c`
//!   (closure under all name identifications, per Lemmas 17–18), and
//!   their weak counterparts (Defs. 14–15);
//! * [`contexts`] — static-context closure testing: random static
//!   contexts plus the paper's discriminating context families (the
//!   tester `T` of Lemma 5 and `C₁` of Theorem 3);
//! * [`arbitrary`] — seeded random generation of finite processes for
//!   the sampled experiments;
//! * [`checkpoint`] — serializable snapshots of in-progress builds and
//!   refinements ([`Checkpoint`] and friends), the resumable
//!   [`Checker::run_with_checkpoint`] pipeline, and the supervised
//!   anytime checker [`Checker::check_supervised`].

// Resumable engines return `Interrupted<Checkpoint>` in their `Err`
// variant: the snapshot rides in the error by value so interruption is
// resumption, not an allocation dance. Clippy's Err-size heuristic
// flags this; boxing would complicate every resume path for no gain.
#![allow(clippy::result_large_err)]

pub mod arbitrary;
pub mod bisim;
pub mod checkpoint;
pub mod compose;
pub mod congruence;
pub mod contexts;
pub mod distinguish;
pub mod epsilon;
pub mod graph;
pub mod logic;
pub mod partition;
pub mod sensors;
pub mod testing;
pub mod upto;

pub use bisim::{
    all_variants, refine, refine_auto, refine_budgeted, refine_parallel, refine_resume,
    refine_worklist, strong_barbed_bisimilar, strong_bisimilar, strong_step_bisimilar,
    weak_barbed_bisimilar, weak_bisimilar, weak_step_bisimilar, Checker, PairRelation, Variant,
    Verdict,
};
pub use checkpoint::{
    Checkpoint, GraphCheckpoint, PartitionCheckpoint, RefineCheckpoint, SupervisedVerdict,
};
pub use compose::{build_composed, compose_enabled, try_compose_pair};
pub use congruence::{
    congruent_strong, congruent_weak, sim_plus, try_congruent_strong, try_congruent_strong_threads,
    try_congruent_weak, try_congruent_weak_threads, try_sim_plus, try_weak_sim_plus, weak_sim_plus,
};
pub use contexts::{sampled_equivalence, sampled_equivalence_threads, StaticContext};
pub use distinguish::{explain, explain_fixpoint, try_explain, Distinction, Experiment, Side};
pub use epsilon::{
    defect, epsilon_bisimilar, epsilon_distance, pair_defect, refine_epsilon, refine_epsilon_naive,
    try_bisimulation_distance, try_epsilon_bisimilar,
};
pub use graph::{identification_substs, shared_pool, Csr, Graph, Opts, PredCsr};
pub use logic::{sat, satisfies, try_satisfies, Formula};
pub use partition::{
    partition_safe, partition_to_relation, quotient, quotient_threads, refine_partition,
    refine_partition_budgeted, refine_partition_parallel, refine_partition_resume,
    refine_partition_self, refine_partition_self_threads, Partition,
};
pub use sensors::{sensor_context, sensors_separate, SensorBarbs};
pub use testing::{may_equivalent_sampled, may_pass, trace_equivalent, traces, Test};
pub use upto::{check_bisimulation_upto, UptoVerdict};
