//! Finite transition graphs for bisimulation checking.
//!
//! A [`Graph`] is the reachable fragment of the full early LTS of one
//! process, finitised in three ways:
//!
//! 1. **Inputs** are instantiated over a *name pool*: the free names of
//!    the processes under comparison plus a few fresh representatives
//!    (`#w0, #w1, …`). By Lemma 18 (injective renamings preserve `~`),
//!    behaviour under one representative fresh name per input position
//!    determines behaviour under all fresh names.
//! 2. **Bound outputs** are normalised: the globally fresh names minted
//!    by scope extrusion are renamed to deterministic representatives
//!    `#b0, #b1, …` (smallest indices not free in the source state), so
//!    matching bound outputs on both sides of a comparison carry
//!    syntactically equal labels — exactly the `b̃ ∩ fn(p,q) = ∅`
//!    canonical-representative convention of Definition 7.
//! 3. **States** are α-canonicalised, making revisits detectable.
//!
//! Discard information (`p —a:→`) is stored per state so that checkers
//! can form the `a(b)?` "input-or-discard" move sets of the paper.

use bpi_core::action::Action;
use bpi_core::name::{Name, NameSet};
use bpi_core::subst::Subst;
use bpi_core::syntax::{Defs, P};
use bpi_core::Consed;
use bpi_semantics::budget::{Budget, EngineError};
use bpi_semantics::lts::{tuples, Lts};
use bpi_semantics::{input_transitions_cached, normalize_state_cached, step_transitions_cached};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, LazyLock, OnceLock};

/// Options for graph construction and bisimulation checking.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Maximum states per side before construction gives up with
    /// [`EngineError::StateBudgetExceeded`] (the paper's theorems are
    /// stated for image-finite processes; exceeding this budget means
    /// the subject is out of scope for the checker).
    pub max_states: usize,
    /// Number of fresh input representatives added to the pool.
    pub fresh_inputs: usize,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            max_states: 20_000,
            fresh_inputs: 1,
        }
    }
}

/// The reachable, pool-instantiated, label-normalised LTS of one process.
pub struct Graph {
    /// α-canonical state representatives; index 0 is the seed.
    pub states: Vec<P>,
    /// Outgoing `τ`/output/input edges (no discard edges; see
    /// [`Graph::state_discards`]).
    pub edges: Vec<Vec<(Action, usize)>>,
    /// Per state, the pool channels it discards.
    pub discarding: Vec<NameSet>,
    /// The global input pool used during construction.
    pub pool: Vec<Name>,
    /// Lazily filled per-state query caches (closures, barbs, weak move
    /// sets); the fixpoint checkers hit the same states thousands of
    /// times.
    caches: GraphCaches,
}

/// Interior-mutability caches for the per-state derived queries. Every
/// entry is a pure function of the (immutable) edge structure, so a
/// cached value is valid for the graph's whole lifetime.
type CachedSet = OnceLock<Arc<BTreeSet<usize>>>;
type KeyedSets<K> = RwLock<HashMap<K, Arc<BTreeSet<usize>>>>;
type KeyedLabels = RwLock<HashMap<(usize, Name), Arc<BTreeSet<Action>>>>;

struct GraphCaches {
    tau_closure: Vec<CachedSet>,
    step_closure: Vec<CachedSet>,
    strong_barbs: Vec<OnceLock<NameSet>>,
    weak_barbs: Vec<OnceLock<NameSet>>,
    weak_step_barbs: Vec<OnceLock<NameSet>>,
    weak_label: KeyedSets<(usize, Action)>,
    weak_discard: KeyedSets<(usize, Name)>,
    weak_input_labels: KeyedLabels,
    arities_on: KeyedSets<Name>,
}

impl GraphCaches {
    fn new(n: usize) -> GraphCaches {
        GraphCaches {
            tau_closure: (0..n).map(|_| OnceLock::new()).collect(),
            step_closure: (0..n).map(|_| OnceLock::new()).collect(),
            strong_barbs: (0..n).map(|_| OnceLock::new()).collect(),
            weak_barbs: (0..n).map(|_| OnceLock::new()).collect(),
            weak_step_barbs: (0..n).map(|_| OnceLock::new()).collect(),
            weak_label: RwLock::new(HashMap::new()),
            weak_discard: RwLock::new(HashMap::new()),
            weak_input_labels: RwLock::new(HashMap::new()),
            arities_on: RwLock::new(HashMap::new()),
        }
    }
}

/// Picks `k` fresh input representatives `#w0, #w1, …` avoiding `avoid`.
pub fn fresh_pool_names(k: usize, avoid: &NameSet) -> Vec<Name> {
    let mut out = Vec::with_capacity(k);
    let mut i = 0usize;
    while out.len() < k {
        let n = Name::pool_rep(i);
        if !avoid.contains(n) {
            out.push(n);
        }
        i += 1;
    }
    out
}

/// The shared pool for comparing `p` and `q`: their free names plus
/// `fresh_inputs` fresh representatives.
pub fn shared_pool(p: &P, q: &P, fresh_inputs: usize) -> Vec<Name> {
    let mut fns = p.free_names().union(&q.free_names());
    let fresh = fresh_pool_names(fresh_inputs, &fns);
    let mut pool = fns.to_vec();
    pool.extend(fresh.iter().copied());
    for f in fresh {
        fns.insert(f);
    }
    pool
}

/// Renames the extruded names of a bound output to deterministic
/// representatives `#b0, #b1, …` (smallest indices whose names are not in
/// `avoid`), rewriting both the label and the continuation.
pub fn normalize_bound_output(act: Action, cont: P, avoid: &NameSet) -> (Action, P) {
    let Action::Output {
        chan,
        objects,
        bound,
    } = act
    else {
        return (act, cont);
    };
    if bound.is_empty() {
        return (
            Action::Output {
                chan,
                objects,
                bound,
            },
            cont,
        );
    }
    let mut subst = Subst::identity();
    let mut used = avoid.clone();
    let mut reps = Vec::with_capacity(bound.len());
    let mut i = 0usize;
    for b in &bound {
        let rep = loop {
            let cand = Name::bound_rep(i);
            i += 1;
            if !used.contains(cand) {
                break cand;
            }
        };
        used.insert(rep);
        subst.bind(*b, rep);
        reps.push(rep);
    }
    let objects = objects.into_iter().map(|o| subst.apply(o)).collect();
    (
        Action::Output {
            chan,
            objects,
            bound: reps,
        },
        subst.apply_process(&cont),
    )
}

/// Global memo of completed graph builds, keyed by
/// *(consed seed, defs generation, pool)*. The `Consed` handle in the key
/// pins the term's interned identity (see `bpi_core::store`). Cleared
/// wholesale on overflow — correctness never depends on a hit.
type GraphKey = (Consed, u64, Vec<Name>);
static GRAPH_MEMO: LazyLock<RwLock<HashMap<GraphKey, Arc<Graph>>>> =
    LazyLock::new(|| RwLock::new(HashMap::new()));
const GRAPH_MEMO_CAP: usize = 1 << 12;

impl Graph {
    /// Builds the reachable graph of `seed` over `pool`. `Err` — never a
    /// panic — when more than `opts.max_states` states are reached.
    pub fn build(seed: &P, defs: &Defs, pool: &[Name], opts: Opts) -> Result<Graph, EngineError> {
        Graph::build_with_budget(seed, defs, pool, opts, &Budget::unlimited())
    }

    /// [`Graph::build`] under an explicit [`Budget`]: the state ceiling
    /// is the smaller of `opts.max_states` and the budget's, and the
    /// budget's deadline/cancellation flag are polled once per expanded
    /// state.
    pub fn build_with_budget(
        seed: &P,
        defs: &Defs,
        pool: &[Name],
        opts: Opts,
        budget: &Budget,
    ) -> Result<Graph, EngineError> {
        let lts = Lts::new(defs);
        let pool_set = NameSet::from_iter(pool.iter().copied());
        let cap = opts.max_states.min(budget.max_states());
        // Consed keys: visited checks are an O(1) id probe, and the
        // handle pins the class so the id stays stable for the build.
        // (The cell's interior OnceLocks never feed Hash/Eq.)
        #[allow(clippy::mutable_key_type)]
        let mut index: HashMap<Consed, usize> = HashMap::new();
        let mut states = Vec::new();
        let mut edges: Vec<Vec<(Action, usize)>> = Vec::new();
        let mut discarding = Vec::new();

        let s0 = normalize_state_cached(seed, None);
        index.insert(bpi_core::cons(&s0), 0);
        states.push(s0);
        let mut work = vec![0usize];

        while let Some(i) = work.pop() {
            budget.check(0)?;
            let src = states[i].clone();
            let src_free = bpi_core::cached_free_names(&src);
            // Dynamic pool: global pool plus extruded representatives that
            // became free in this state (so later inputs can mention them).
            let mut dyn_pool = pool.to_vec();
            for n in &src_free {
                if !pool_set.contains(n) && n.spelling().starts_with("#b") {
                    dyn_pool.push(n);
                }
            }
            let avoid = src_free.union(&pool_set);

            let mut out = Vec::new();
            let push = |act: Action,
                        cont: P,
                        states: &mut Vec<P>,
                        index: &mut HashMap<Consed, usize>,
                        work: &mut Vec<usize>,
                        out: &mut Vec<(Action, usize)>|
             -> Result<(), EngineError> {
                let state = normalize_state_cached(&cont, None);
                let key = bpi_core::cons(&state);
                let j = match index.get(&key) {
                    Some(&j) => j,
                    None => {
                        if states.len() >= cap {
                            return Err(EngineError::StateBudgetExceeded { limit: cap });
                        }
                        let j = states.len();
                        index.insert(key, j);
                        states.push(state);
                        work.push(j);
                        j
                    }
                };
                out.push((act, j));
                Ok(())
            };

            for (act, cont) in step_transitions_cached(&lts, &src).iter() {
                let (act, cont) = normalize_bound_output(act.clone(), cont.clone(), &avoid);
                push(act, cont, &mut states, &mut index, &mut work, &mut out)?;
            }
            for (act, cont) in input_transitions_cached(&lts, &src, &dyn_pool).iter() {
                push(
                    act.clone(),
                    cont.clone(),
                    &mut states,
                    &mut index,
                    &mut work,
                    &mut out,
                )?;
            }
            let mut disc = NameSet::new();
            for &a in &dyn_pool {
                if lts.discards(&src, a) {
                    disc.insert(a);
                }
            }
            while edges.len() < states.len() {
                edges.push(Vec::new());
                discarding.push(NameSet::new());
            }
            edges[i] = out;
            discarding[i] = disc;
        }
        // `states` may outrun `edges` when the last expansions created
        // fresh states; pad (they are processed because `work` drains).
        while edges.len() < states.len() {
            edges.push(Vec::new());
            discarding.push(NameSet::new());
        }
        let caches = GraphCaches::new(states.len());
        Ok(Graph {
            states,
            edges,
            discarding,
            pool: pool.to_vec(),
            caches,
        })
    }

    /// [`Graph::build_with_budget`] through a global memo keyed by
    /// *(consed seed, defs generation, pool)*: the six bisimulation
    /// variants, the congruence layer, distinguishing-formula extraction
    /// and the modal logic all rebuild the same graphs, and a completed
    /// build is a pure function of that key.
    ///
    /// Budget semantics are replayed exactly: a memoized graph is always
    /// *complete*, so the original build would have failed iff the graph
    /// needs more states than the effective ceiling allows — in which
    /// case the same typed error is returned without rebuilding.
    pub fn build_cached(
        seed: &P,
        defs: &Defs,
        pool: &[Name],
        opts: Opts,
        budget: &Budget,
    ) -> Result<Arc<Graph>, EngineError> {
        budget.check(0)?;
        let cap = opts.max_states.min(budget.max_states());
        let key = (bpi_core::cons(seed), defs.generation(), pool.to_vec());
        if let Some(g) = GRAPH_MEMO.read().get(&key) {
            if g.len() > cap {
                return Err(EngineError::StateBudgetExceeded { limit: cap });
            }
            return Ok(g.clone());
        }
        let g = Arc::new(Graph::build_with_budget(seed, defs, pool, opts, budget)?);
        let mut memo = GRAPH_MEMO.write();
        if memo.len() >= GRAPH_MEMO_CAP {
            memo.clear();
        }
        memo.insert(key, g.clone());
        Ok(g)
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// τ-successors of state `i`.
    pub fn tau_succs(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges[i]
            .iter()
            .filter(|(a, _)| matches!(a, Action::Tau))
            .map(|(_, j)| *j)
    }

    /// Output edges of state `i`.
    pub fn out_edges(&self, i: usize) -> impl Iterator<Item = (&Action, usize)> + '_ {
        self.edges[i]
            .iter()
            .filter(|(a, _)| a.is_output())
            .map(|(a, j)| (a, *j))
    }

    /// Input edges of state `i`.
    pub fn input_edges(&self, i: usize) -> impl Iterator<Item = (&Action, usize)> + '_ {
        self.edges[i]
            .iter()
            .filter(|(a, _)| a.is_input())
            .map(|(a, j)| (a, *j))
    }

    /// Step-move edges (`τ` or output) of state `i`.
    pub fn step_edges(&self, i: usize) -> impl Iterator<Item = (&Action, usize)> + '_ {
        self.edges[i]
            .iter()
            .filter(|(a, _)| a.is_step_move())
            .map(|(a, j)| (a, *j))
    }

    /// Whether state `i` discards channel `a`.
    pub fn state_discards(&self, i: usize, a: Name) -> bool {
        self.discarding[i].contains(a)
    }

    /// τ-closure of `i` (including `i`), as a sorted set. Computed once
    /// per state and shared.
    pub fn tau_closure(&self, i: usize) -> Arc<BTreeSet<usize>> {
        self.caches.tau_closure[i]
            .get_or_init(|| Arc::new(self.closure(i, |a| matches!(a, Action::Tau))))
            .clone()
    }

    /// Step-closure of `i` (τ and outputs), including `i`. Cached.
    pub fn step_closure(&self, i: usize) -> Arc<BTreeSet<usize>> {
        self.caches.step_closure[i]
            .get_or_init(|| Arc::new(self.closure(i, |a| a.is_step_move())))
            .clone()
    }

    fn closure(&self, i: usize, keep: impl Fn(&Action) -> bool) -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([i]);
        let mut work = vec![i];
        while let Some(k) = work.pop() {
            for (a, j) in &self.edges[k] {
                if keep(a) && seen.insert(*j) {
                    work.push(*j);
                }
            }
        }
        seen
    }

    /// Strong barbs of state `i`: subjects of its output edges. Cached.
    pub fn strong_barbs(&self, i: usize) -> NameSet {
        self.caches.strong_barbs[i]
            .get_or_init(|| NameSet::from_iter(self.out_edges(i).filter_map(|(a, _)| a.subject())))
            .clone()
    }

    /// Weak barbs of state `i`. Cached.
    pub fn weak_barbs(&self, i: usize) -> NameSet {
        self.caches.weak_barbs[i]
            .get_or_init(|| {
                let mut s = NameSet::new();
                for &j in self.tau_closure(i).iter() {
                    s.extend(&self.strong_barbs(j));
                }
                s
            })
            .clone()
    }

    /// Weak step-barbs of state `i` (`⇓ₐ^φ`). Cached.
    pub fn weak_step_barbs(&self, i: usize) -> NameSet {
        self.caches.weak_step_barbs[i]
            .get_or_init(|| {
                let mut s = NameSet::new();
                for &j in self.step_closure(i).iter() {
                    s.extend(&self.strong_barbs(j));
                }
                s
            })
            .clone()
    }

    /// Weak moves `i ⇒ —α→ ⇒` for a specific non-τ label. Cached per
    /// *(state, label)*.
    pub fn weak_label(&self, i: usize, label: &Action) -> Arc<BTreeSet<usize>> {
        let key = (i, label.clone());
        if let Some(v) = self.caches.weak_label.read().get(&key) {
            return v.clone();
        }
        let mut out = BTreeSet::new();
        for &j in self.tau_closure(i).iter() {
            for (a, k) in &self.edges[j] {
                if a == label {
                    out.extend(self.tau_closure(*k).iter().copied());
                }
            }
        }
        let v = Arc::new(out);
        self.caches.weak_label.write().insert(key, v.clone());
        v
    }

    /// Weak discard set: states `j'` with `i ⇒ j₁ —a:→ j₁ ⇒ j'` — i.e.
    /// τ-reachable continuations of τ-reachable states that discard `a`.
    /// Cached per *(state, channel)*.
    pub fn weak_discard(&self, i: usize, a: Name) -> Arc<BTreeSet<usize>> {
        if let Some(v) = self.caches.weak_discard.read().get(&(i, a)) {
            return v.clone();
        }
        let mut out = BTreeSet::new();
        for &j in self.tau_closure(i).iter() {
            if self.state_discards(j, a) {
                out.extend(self.tau_closure(j).iter().copied());
            }
        }
        let v = Arc::new(out);
        self.caches.weak_discard.write().insert((i, a), v.clone());
        v
    }

    /// All input labels on channel `a` reachable in the τ-closure of `i`
    /// (used when matching discard moves weakly). Cached per
    /// *(state, channel)*.
    pub fn weak_input_labels(&self, i: usize, a: Name) -> Arc<BTreeSet<Action>> {
        if let Some(v) = self.caches.weak_input_labels.read().get(&(i, a)) {
            return v.clone();
        }
        let mut out = BTreeSet::new();
        for &j in self.tau_closure(i).iter() {
            for (act, _) in self.input_edges(j) {
                if act.subject() == Some(a) {
                    out.insert(act.clone());
                }
            }
        }
        let v = Arc::new(out);
        self.caches
            .weak_input_labels
            .write()
            .insert((i, a), v.clone());
        v
    }

    /// The arities at which any state of the graph listens on `a`.
    /// Cached per channel (the uncached scan walks every edge).
    pub fn arities_on(&self, a: Name) -> Arc<BTreeSet<usize>> {
        if let Some(v) = self.caches.arities_on.read().get(&a) {
            return v.clone();
        }
        let mut out = BTreeSet::new();
        for es in &self.edges {
            for (act, _) in es {
                if act.is_input() && act.subject() == Some(a) {
                    out.insert(act.objects().len());
                }
            }
        }
        let v = Arc::new(out);
        self.caches.arities_on.write().insert(a, v.clone());
        v
    }
}

/// Enumerates the collapsing substitutions induced by all partitions of
/// `names` (each equivalence class is mapped to its least element). By
/// Lemma 17.1 + Lemma 18 these finitely many substitutions suffice to
/// decide the ∀σ quantification of `~c` (Definition 11).
pub fn identification_substs(names: &NameSet) -> Vec<Subst> {
    let names: Vec<Name> = names.to_vec();
    let mut out = Vec::new();
    // Enumerate set partitions via restricted growth strings.
    fn go(names: &[Name], assignment: &mut Vec<usize>, max_block: usize, out: &mut Vec<Subst>) {
        if assignment.len() == names.len() {
            let mut blocks: BTreeMap<usize, Vec<Name>> = BTreeMap::new();
            for (idx, &b) in assignment.iter().enumerate() {
                blocks.entry(b).or_default().push(names[idx]);
            }
            let mut s = Subst::identity();
            for block in blocks.values() {
                let rep = block[0];
                for &n in &block[1..] {
                    s.bind(n, rep);
                }
            }
            out.push(s);
            return;
        }
        for b in 0..=max_block {
            assignment.push(b);
            go(
                names,
                assignment,
                max_block.max(b + 1).min(names.len()),
                out,
            );
            assignment.pop();
        }
    }
    if names.is_empty() {
        return vec![Subst::identity()];
    }
    go(&names, &mut Vec::new(), 0, &mut out);
    out
}

/// The input tuple space of a channel over a pool, for a set of arities.
pub fn label_space(pool: &[Name], arities: &BTreeSet<usize>) -> Vec<Vec<Name>> {
    let mut out = Vec::new();
    for &n in arities {
        out.extend(tuples(pool, n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpi_core::builder::*;

    #[test]
    fn graph_of_simple_output() {
        let defs = Defs::new();
        let [a, v] = names(["a", "v"]);
        let p = out_(a, [v]);
        let q = nil();
        let pool = shared_pool(&p, &q, 1);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.out_edges(0).count(), 1);
        assert!(g.state_discards(0, a), "output prefixes discard");
    }

    #[test]
    fn input_edges_cover_pool() {
        let defs = Defs::new();
        let [a, x] = names(["a", "x"]);
        let p = inp(a, [x], out_(x, []));
        let pool = shared_pool(&p, &nil(), 1); // {a} + one fresh
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        assert_eq!(g.input_edges(0).count(), 2);
        assert!(!g.state_discards(0, a));
    }

    #[test]
    fn bound_outputs_are_normalised() {
        let defs = Defs::new();
        let [a, x] = names(["a", "x"]);
        let p = new(x, out(a, [x], out_(x, [])));
        let pool = shared_pool(&p, &nil(), 1);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        let (act, _) = g.out_edges(0).next().unwrap();
        assert_eq!(act.bound_names().len(), 1);
        assert_eq!(act.bound_names()[0].spelling(), "#b0");
        // Re-building yields the identical label: determinism.
        let g2 = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        let (act2, _) = g2.out_edges(0).next().unwrap();
        assert_eq!(act, act2);
    }

    #[test]
    fn extrusion_recursion_has_finite_graph() {
        // (rec X(a). νt āt.X⟨a⟩)⟨a⟩: with normalised bound outputs the
        // graph is finite.
        let defs = Defs::new();
        let [a, t] = names(["a", "t"]);
        let xid = bpi_core::syntax::Ident::new("GExtr");
        let p = rec(xid, [a], new(t, out(a, [t], var(xid, [a]))), [a]);
        let pool = shared_pool(&p, &nil(), 1);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        assert_eq!(g.len(), 1, "states: {:?}", g.states);
    }

    #[test]
    fn closures_and_barbs() {
        let defs = Defs::new();
        let [a, b] = names(["a", "b"]);
        let p = sum(tau(out_(a, [])), out_(b, []));
        let pool = shared_pool(&p, &nil(), 0);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        assert_eq!(g.strong_barbs(0).to_vec(), vec![b]);
        assert_eq!(g.weak_barbs(0).to_vec(), vec![a, b]);
        assert_eq!(g.tau_closure(0).len(), 2);
    }

    #[test]
    fn identification_substs_enumerate_partitions() {
        let [a, b, c] = names(["a", "b", "c"]);
        let subs = identification_substs(&NameSet::from_iter([a, b, c]));
        assert_eq!(subs.len(), 5, "Bell(3) = 5");
        assert!(subs.iter().any(|s| s.is_identity()));
        // The all-identified substitution maps b and c to a.
        assert!(subs.iter().any(|s| s.apply(b) == a && s.apply(c) == a));
    }

    #[test]
    fn build_exhaustion_is_typed_not_a_panic() {
        // GPump(a) = τ.(ā ‖ GPump⟨a⟩) grows without bound; both the
        // opts ceiling and an explicit Budget must surface as Err.
        let defs = Defs::new();
        let [a] = names(["a"]);
        let xid = bpi_core::syntax::Ident::new("GPump");
        let p = rec(xid, [a], tau(par(out_(a, []), var(xid, [a]))), [a]);
        let pool = shared_pool(&p, &nil(), 1);
        let small = Opts {
            max_states: 6,
            fresh_inputs: 1,
        };
        assert_eq!(
            Graph::build(&p, &defs, &pool, small).err(),
            Some(EngineError::StateBudgetExceeded { limit: 6 })
        );
        assert_eq!(
            Graph::build_with_budget(&p, &defs, &pool, Opts::default(), &Budget::states(3)).err(),
            Some(EngineError::StateBudgetExceeded { limit: 3 })
        );
        // A generous ceiling on a finite system still succeeds.
        let q = out_(a, []);
        assert!(
            Graph::build_with_budget(&q, &defs, &pool, Opts::default(), &Budget::states(100))
                .is_ok()
        );
    }

    #[test]
    fn weak_discard_traverses_taus() {
        let defs = Defs::new();
        let [a, x] = names(["a", "x"]);
        // a(x).nil + τ.nil : can weakly discard a by taking the τ.
        let p = sum(inp_(a, [x]), tau_());
        let pool = shared_pool(&p, &nil(), 1);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        assert!(!g.state_discards(0, a));
        assert!(!g.weak_discard(0, a).is_empty());
    }
}
