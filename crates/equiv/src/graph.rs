//! Finite transition graphs for bisimulation checking.
//!
//! A [`Graph`] is the reachable fragment of the full early LTS of one
//! process, finitised in three ways:
//!
//! 1. **Inputs** are instantiated over a *name pool*: the free names of
//!    the processes under comparison plus a few fresh representatives
//!    (`#w0, #w1, …`). By Lemma 18 (injective renamings preserve `~`),
//!    behaviour under one representative fresh name per input position
//!    determines behaviour under all fresh names.
//! 2. **Bound outputs** are normalised: the globally fresh names minted
//!    by scope extrusion are renamed to deterministic representatives
//!    `#b0, #b1, …` (smallest indices not free in the source state), so
//!    matching bound outputs on both sides of a comparison carry
//!    syntactically equal labels — exactly the `b̃ ∩ fn(p,q) = ∅`
//!    canonical-representative convention of Definition 7.
//! 3. **States** are α-canonicalised, making revisits detectable.
//!
//! Discard information (`p —a:→`) is stored per state so that checkers
//! can form the `a(b)?` "input-or-discard" move sets of the paper.

use crate::checkpoint::GraphCheckpoint;
use bpi_core::action::Action;
use bpi_core::name::{Name, NameSet};
use bpi_core::subst::Subst;
use bpi_core::syntax::{Defs, P};
use bpi_core::Consed;
use bpi_obs::{counter, Counter, Det, Value};
use bpi_semantics::budget::{Budget, EngineError};
use bpi_semantics::checkpoint::{record_snapshot, CheckpointCfg, Interrupted};
use bpi_semantics::frontier::{expand_frontier, renumber_bfs, Expansion};
use bpi_semantics::lts::{tuples, Lts};
use bpi_semantics::{input_transitions_cached, normalize_state_cached, step_transitions_cached};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, LazyLock, OnceLock};

// Build metrics. Completed graphs are bit-identical between the
// sequential and parallel constructions (canonical BFS numbering), so
// everything counted off a finished graph — and the state-ceiling
// failure, which is a property of the reachable set — is deterministic.
// Deadline/cancellation/panic failures and memo hit rates depend on
// wall clock and process history: advisory.
static BUILDS: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.graph.builds", Det::Deterministic));
static BUILD_STATES: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.graph.states", Det::Deterministic));
static BUILD_EDGES: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.graph.edges", Det::Deterministic));
static BUILD_LABELS: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.graph.labels", Det::Deterministic));
static BUILD_CHANS: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.graph.chans", Det::Deterministic));
static BUILD_EXHAUSTED: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.graph.exhausted", Det::Deterministic));
static BUILD_INTERRUPTED: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.graph.interrupted", Det::Advisory));
static MEMO_HITS: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.graph.memo.hits", Det::Advisory));
static MEMO_MISSES: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.graph.memo.misses", Det::Advisory));

/// Records a failed build (fresh or replayed from the memo).
fn record_build_err(e: &EngineError) {
    match e {
        EngineError::StateBudgetExceeded { .. } => BUILD_EXHAUSTED.inc(),
        _ => BUILD_INTERRUPTED.inc(),
    }
    bpi_obs::emit("equiv.graph", "build_failed", || {
        vec![("error", Value::from(e.to_string()))]
    });
}

/// Options for graph construction and bisimulation checking.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Maximum states per side before construction gives up with
    /// [`EngineError::StateBudgetExceeded`] (the paper's theorems are
    /// stated for image-finite processes; exceeding this budget means
    /// the subject is out of scope for the checker).
    pub max_states: usize,
    /// Number of fresh input representatives added to the pool.
    pub fresh_inputs: usize,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            max_states: 20_000,
            fresh_inputs: 1,
        }
    }
}

/// The reachable, pool-instantiated, label-normalised LTS of one process.
pub struct Graph {
    /// α-canonical state representatives; index 0 is the seed, and the
    /// numbering is canonical breadth-first discovery order (identical
    /// for [`Graph::build`] and [`Graph::build_parallel`]).
    pub states: Vec<P>,
    /// Outgoing `τ`/output/input edges (no discard edges; see
    /// [`Graph::state_discards`]), in derivation order. The checkers read
    /// the flattened [`Csr`] mirror instead; this nested form is kept as
    /// the construction-order source of truth for display, tests, and
    /// the congruence layer.
    pub edges: Vec<Vec<(Action, usize)>>,
    /// Per state, the pool channels it discards.
    pub discarding: Vec<NameSet>,
    /// The global input pool used during construction.
    pub pool: Vec<Name>,
    /// Flattened compressed-sparse-row mirror of `edges` with interned
    /// label ids; built once at construction.
    csr: Csr,
    /// Lazily filled per-state query caches (closures, barbs, weak move
    /// sets); the fixpoint checkers hit the same states thousands of
    /// times.
    caches: GraphCaches,
}

/// Label-kind bits precomputed per interned label id.
const K_TAU: u8 = 1;
const K_OUT: u8 = 2;
const K_IN: u8 = 4;
const K_STEP: u8 = K_TAU | K_OUT;

/// Compressed-sparse-row form of a graph's transition structure.
///
/// Labels are interned into a sorted table so edge scans compare dense
/// `u32` ids instead of hashing `Action` trees, and per-label kind /
/// subject / arity lookups are array reads. The per-label predecessor
/// CSR (`preds`) that the worklist refiner needs is built lazily — small
/// graphs dispatched to the naive refiner never pay for it.
pub struct Csr {
    /// Sorted, deduplicated table of every label occurring on an edge.
    labels: Vec<Action>,
    label_index: HashMap<Action, u32>,
    /// Kind bits (`τ`/output/input) per label id.
    kinds: Vec<u8>,
    /// Dense channel id of each label's subject (`u32::MAX` for `τ`).
    label_chan: Vec<u32>,
    /// Object arity of each label.
    label_arity: Vec<u32>,
    /// `offsets[i]..offsets[i + 1]` spans state `i`'s edges in the flat
    /// arrays below; `offsets.len() == n + 1`.
    offsets: Vec<u32>,
    edge_labels: Vec<u32>,
    edge_targets: Vec<u32>,
    /// Dense channel table: pool names, discardable names, and every
    /// label subject. Queries about channels outside the table answer
    /// "empty" without touching any cache.
    chans: Vec<Name>,
    chan_index: HashMap<Name, u32>,
    /// Per-target predecessor blocks, sorted by (label id, source) within
    /// each block so a single label's predecessors are one subrange.
    preds: OnceLock<PredCsr>,
}

/// The lazily built predecessor index: for each target state `t`,
/// `entries[offsets[t]..offsets[t + 1]]` lists `(label id, source)` pairs
/// of every edge into `t`, sorted.
pub struct PredCsr {
    offsets: Vec<u32>,
    entries: Vec<(u32, u32)>,
}

impl Csr {
    fn build(edges: &[Vec<(Action, usize)>], pool: &[Name], discarding: &[NameSet]) -> Csr {
        let mut label_set: BTreeSet<&Action> = BTreeSet::new();
        for es in edges {
            for (a, _) in es {
                label_set.insert(a);
            }
        }
        let labels: Vec<Action> = label_set.into_iter().cloned().collect();
        let label_index: HashMap<Action, u32> = labels
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), i as u32))
            .collect();

        let mut chan_set: BTreeSet<Name> = pool.iter().copied().collect();
        for d in discarding {
            for n in d.iter() {
                chan_set.insert(n);
            }
        }
        for a in &labels {
            if let Some(c) = a.subject() {
                chan_set.insert(c);
            }
        }
        let chans: Vec<Name> = chan_set.into_iter().collect();
        let chan_index: HashMap<Name, u32> = chans
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u32))
            .collect();

        let mut kinds = Vec::with_capacity(labels.len());
        let mut label_chan = Vec::with_capacity(labels.len());
        let mut label_arity = Vec::with_capacity(labels.len());
        for a in &labels {
            kinds.push(match a {
                Action::Tau => K_TAU,
                Action::Output { .. } => K_OUT,
                Action::Input { .. } => K_IN,
                Action::Discard { .. } => 0,
            });
            label_chan.push(a.subject().map_or(u32::MAX, |c| chan_index[&c]));
            label_arity.push(a.objects().len() as u32);
        }

        let total: usize = edges.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(edges.len() + 1);
        let mut edge_labels = Vec::with_capacity(total);
        let mut edge_targets = Vec::with_capacity(total);
        offsets.push(0u32);
        for es in edges {
            for (a, j) in es {
                edge_labels.push(label_index[a]);
                edge_targets.push(*j as u32);
            }
            offsets.push(edge_labels.len() as u32);
        }
        Csr {
            labels,
            label_index,
            kinds,
            label_chan,
            label_arity,
            offsets,
            edge_labels,
            edge_targets,
            chans,
            chan_index,
            preds: OnceLock::new(),
        }
    }

    /// Number of distinct edge labels.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Number of channels in the dense channel table.
    pub fn num_chans(&self) -> usize {
        self.chans.len()
    }

    /// Total edge count.
    pub fn num_edges(&self) -> usize {
        self.edge_targets.len()
    }

    /// The interned label table, sorted.
    pub fn labels(&self) -> &[Action] {
        &self.labels
    }

    /// The dense id of `label`, if it occurs in this graph.
    pub fn label_id(&self, label: &Action) -> Option<u32> {
        self.label_index.get(label).copied()
    }

    /// The dense id of channel `a`, if it is in the channel table.
    pub fn chan_id(&self, a: Name) -> Option<u32> {
        self.chan_index.get(&a).copied()
    }

    /// Kind bits of label `lid`.
    fn kind(&self, lid: u32) -> u8 {
        self.kinds[lid as usize]
    }

    /// State `i`'s edge span in the flat arrays.
    fn range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// The predecessor index, built on first use.
    pub fn preds(&self) -> &PredCsr {
        self.preds.get_or_init(|| {
            let n = self.offsets.len() - 1;
            let mut offsets = vec![0u32; n + 1];
            for &t in &self.edge_targets {
                offsets[t as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor = offsets.clone();
            let mut entries = vec![(0u32, 0u32); self.edge_targets.len()];
            for i in 0..n {
                for e in self.range(i) {
                    let t = self.edge_targets[e] as usize;
                    entries[cursor[t] as usize] = (self.edge_labels[e], i as u32);
                    cursor[t] += 1;
                }
            }
            for t in 0..n {
                entries[offsets[t] as usize..offsets[t + 1] as usize].sort_unstable();
            }
            PredCsr { offsets, entries }
        })
    }

    /// `(label id, source)` pairs of every edge into state `i`.
    pub fn preds_of(&self, i: usize) -> &[(u32, u32)] {
        let p = self.preds();
        &p.entries[p.offsets[i] as usize..p.offsets[i + 1] as usize]
    }

    /// The predecessors of `i` along edges labelled `lid` (one binary
    /// searched subrange of the per-target block).
    pub fn preds_of_label(&self, i: usize, lid: u32) -> &[(u32, u32)] {
        let block = self.preds_of(i);
        let lo = block.partition_point(|&(l, _)| l < lid);
        let hi = block.partition_point(|&(l, _)| l <= lid);
        &block[lo..hi]
    }
}

/// Interior-mutability caches for the per-state derived queries. Every
/// entry is a pure function of the (immutable) edge structure, so a
/// cached value is valid for the graph's whole lifetime. Racing
/// initialisations compute the same pure value, so concurrent refiner
/// workers can share a graph freely.
type CachedSet = OnceLock<Arc<BTreeSet<usize>>>;

/// Entries per dense key space before a [`Keyed`] cache falls back from
/// a flat `OnceLock` slab to a locked map.
const SLAB_CAP: usize = 1 << 20;

/// A cache over a bounded dense key space (state × label, state ×
/// channel, …): a flat lazily-allocated `OnceLock` slab when the space
/// is small enough to index directly, a `RwLock`ed map for the rare huge
/// products.
struct Keyed<T> {
    len: usize,
    slab: OnceLock<Box<[OnceLock<T>]>>,
    map: RwLock<HashMap<usize, T>>,
}

impl<T: Clone> Keyed<T> {
    fn new(len: usize) -> Keyed<T> {
        Keyed {
            len,
            slab: OnceLock::new(),
            map: RwLock::new(HashMap::new()),
        }
    }

    fn get_or_init(&self, idx: usize, f: impl FnOnce() -> T) -> T {
        if self.len <= SLAB_CAP {
            let slab = self
                .slab
                .get_or_init(|| (0..self.len).map(|_| OnceLock::new()).collect());
            slab[idx].get_or_init(f).clone()
        } else {
            if let Some(v) = self.map.read().get(&idx) {
                return v.clone();
            }
            let v = f();
            self.map.write().entry(idx).or_insert(v).clone()
        }
    }
}

static EMPTY_STATES: LazyLock<Arc<BTreeSet<usize>>> = LazyLock::new(|| Arc::new(BTreeSet::new()));
static EMPTY_ACTIONS: LazyLock<Arc<BTreeSet<Action>>> = LazyLock::new(|| Arc::new(BTreeSet::new()));

struct GraphCaches {
    tau_closure: Vec<CachedSet>,
    step_closure: Vec<CachedSet>,
    strong_barbs: Vec<OnceLock<NameSet>>,
    weak_barbs: Vec<OnceLock<NameSet>>,
    weak_step_barbs: Vec<OnceLock<NameSet>>,
    /// Indexed `state * num_labels + label_id`.
    weak_label: Keyed<Arc<BTreeSet<usize>>>,
    /// Indexed `state * num_chans + chan_id`.
    weak_discard: Keyed<Arc<BTreeSet<usize>>>,
    /// Indexed `state * num_chans + chan_id`.
    weak_input_labels: Keyed<Arc<BTreeSet<Action>>>,
    /// Indexed `chan_id`.
    arities_on: Keyed<Arc<BTreeSet<usize>>>,
    /// Strong dependency sets: direct predecessors plus the diagonal.
    deps_strong: OnceLock<Arc<Vec<Vec<usize>>>>,
    /// Weak dependency sets: inverse transitive reachability.
    deps_weak: OnceLock<Arc<Vec<Vec<usize>>>>,
}

impl GraphCaches {
    fn new(n: usize, labels: usize, chans: usize) -> GraphCaches {
        GraphCaches {
            tau_closure: (0..n).map(|_| OnceLock::new()).collect(),
            step_closure: (0..n).map(|_| OnceLock::new()).collect(),
            strong_barbs: (0..n).map(|_| OnceLock::new()).collect(),
            weak_barbs: (0..n).map(|_| OnceLock::new()).collect(),
            weak_step_barbs: (0..n).map(|_| OnceLock::new()).collect(),
            weak_label: Keyed::new(n * labels),
            weak_discard: Keyed::new(n * chans),
            weak_input_labels: Keyed::new(n * chans),
            arities_on: Keyed::new(chans),
            deps_strong: OnceLock::new(),
            deps_weak: OnceLock::new(),
        }
    }
}

/// Picks `k` fresh input representatives `#w0, #w1, …` avoiding `avoid`.
pub fn fresh_pool_names(k: usize, avoid: &NameSet) -> Vec<Name> {
    let mut out = Vec::with_capacity(k);
    let mut i = 0usize;
    while out.len() < k {
        let n = Name::pool_rep(i);
        if !avoid.contains(n) {
            out.push(n);
        }
        i += 1;
    }
    out
}

/// The shared pool for comparing `p` and `q`: their free names plus
/// `fresh_inputs` fresh representatives.
pub fn shared_pool(p: &P, q: &P, fresh_inputs: usize) -> Vec<Name> {
    let mut fns = p.free_names().union(&q.free_names());
    let fresh = fresh_pool_names(fresh_inputs, &fns);
    let mut pool = fns.to_vec();
    pool.extend(fresh.iter().copied());
    for f in fresh {
        fns.insert(f);
    }
    pool
}

/// Renames the extruded names of a bound output to deterministic
/// representatives `#b0, #b1, …` (smallest indices whose names are not in
/// `avoid`), rewriting both the label and the continuation.
pub fn normalize_bound_output(act: Action, cont: P, avoid: &NameSet) -> (Action, P) {
    let Action::Output {
        chan,
        objects,
        bound,
    } = act
    else {
        return (act, cont);
    };
    if bound.is_empty() {
        return (
            Action::Output {
                chan,
                objects,
                bound,
            },
            cont,
        );
    }
    let mut subst = Subst::identity();
    let mut used = avoid.clone();
    let mut reps = Vec::with_capacity(bound.len());
    let mut i = 0usize;
    for b in &bound {
        let rep = loop {
            let cand = Name::bound_rep(i);
            i += 1;
            if !used.contains(cand) {
                break cand;
            }
        };
        used.insert(rep);
        subst.bind(*b, rep);
        reps.push(rep);
    }
    let objects = objects.into_iter().map(|o| subst.apply(o)).collect();
    (
        Action::Output {
            chan,
            objects,
            bound: reps,
        },
        subst.apply_process(&cont),
    )
}

/// Global memo of completed graph builds, keyed by
/// *(consed seed, defs generation, pool)*. The `Consed` handle in the key
/// pins the term's interned identity (see `bpi_core::store`). Cleared
/// wholesale on overflow — correctness never depends on a hit.
type GraphKey = (Consed, u64, Vec<Name>);
static GRAPH_MEMO: LazyLock<RwLock<HashMap<GraphKey, Arc<Graph>>>> =
    LazyLock::new(|| RwLock::new(HashMap::new()));
const GRAPH_MEMO_CAP: usize = 1 << 12;

impl Graph {
    /// Builds the reachable graph of `seed` over `pool`. `Err` — never a
    /// panic — when more than `opts.max_states` states are reached.
    pub fn build(seed: &P, defs: &Defs, pool: &[Name], opts: Opts) -> Result<Graph, EngineError> {
        Graph::build_with_budget(seed, defs, pool, opts, &Budget::unlimited())
    }

    /// [`Graph::build`] under an explicit [`Budget`]: the state ceiling
    /// is the smaller of `opts.max_states` and the budget's, and the
    /// budget's deadline/cancellation flag are polled once per expanded
    /// state.
    pub fn build_with_budget(
        seed: &P,
        defs: &Defs,
        pool: &[Name],
        opts: Opts,
        budget: &Budget,
    ) -> Result<Graph, EngineError> {
        let _span = bpi_obs::span("equiv.graph", "build_sequential");
        let r = Graph::build_sequential_inner(seed, defs, pool, opts, budget);
        if let Err(e) = &r {
            record_build_err(e);
        }
        r
    }

    fn build_sequential_inner(
        seed: &P,
        defs: &Defs,
        pool: &[Name],
        opts: Opts,
        budget: &Budget,
    ) -> Result<Graph, EngineError> {
        let lts = Lts::new(defs);
        let pool_set = NameSet::from_iter(pool.iter().copied());
        let cap = opts.max_states.min(budget.max_states());
        // Consed keys: visited checks are an O(1) id probe, and the
        // handle pins the class so the id stays stable for the build.
        // (The cell's interior OnceLocks never feed Hash/Eq.)
        #[allow(clippy::mutable_key_type)]
        let mut index: HashMap<Consed, usize> = HashMap::new();
        let mut states = Vec::new();
        let mut edges: Vec<Vec<(Action, usize)>> = Vec::new();
        let mut discarding = Vec::new();

        let s0 = normalize_state_cached(seed, None);
        index.insert(bpi_core::cons(&s0), 0);
        states.push(s0);
        // FIFO expansion: state numbering is then canonical breadth-first
        // discovery order, the same order `build_parallel` renumbers to.
        let mut work = VecDeque::from([0usize]);

        while let Some(i) = work.pop_front() {
            budget.check(0)?;
            let src = states[i].clone();
            let src_free = bpi_core::cached_free_names(&src);
            // Dynamic pool: global pool plus extruded representatives that
            // became free in this state (so later inputs can mention them).
            let mut dyn_pool = pool.to_vec();
            for n in &src_free {
                if !pool_set.contains(n) && n.spelling().starts_with("#b") {
                    dyn_pool.push(n);
                }
            }
            let avoid = src_free.union(&pool_set);

            let mut out = Vec::new();
            let push = |act: Action,
                        cont: P,
                        states: &mut Vec<P>,
                        index: &mut HashMap<Consed, usize>,
                        work: &mut VecDeque<usize>,
                        out: &mut Vec<(Action, usize)>|
             -> Result<(), EngineError> {
                let state = normalize_state_cached(&cont, None);
                let key = bpi_core::cons(&state);
                let j = match index.get(&key) {
                    Some(&j) => j,
                    None => {
                        if states.len() >= cap {
                            return Err(EngineError::StateBudgetExceeded { limit: cap });
                        }
                        let j = states.len();
                        index.insert(key, j);
                        states.push(state);
                        work.push_back(j);
                        j
                    }
                };
                out.push((act, j));
                Ok(())
            };

            for (act, cont) in step_transitions_cached(&lts, &src).iter() {
                let (act, cont) = normalize_bound_output(act.clone(), cont.clone(), &avoid);
                push(act, cont, &mut states, &mut index, &mut work, &mut out)?;
            }
            for (act, cont) in input_transitions_cached(&lts, &src, &dyn_pool).iter() {
                push(
                    act.clone(),
                    cont.clone(),
                    &mut states,
                    &mut index,
                    &mut work,
                    &mut out,
                )?;
            }
            let mut disc = NameSet::new();
            for &a in &dyn_pool {
                if lts.discards(&src, a) {
                    disc.insert(a);
                }
            }
            while edges.len() < states.len() {
                edges.push(Vec::new());
                discarding.push(NameSet::new());
            }
            edges[i] = out;
            discarding[i] = disc;
        }
        // `states` may outrun `edges` when the last expansions created
        // fresh states; pad (they are processed because `work` drains).
        while edges.len() < states.len() {
            edges.push(Vec::new());
            discarding.push(NameSet::new());
        }
        Ok(Graph::from_parts(states, edges, discarding, pool.to_vec()))
    }

    /// [`Graph::build_with_budget`] in checkpointed form: any
    /// interruption — state-ceiling exhaustion, deadline, cancellation,
    /// chaos pressure, or checkpoint-fuel exhaustion — returns
    /// [`Interrupted`] carrying a [`GraphCheckpoint`] from which
    /// [`Graph::resume_from`] continues without re-expanding a single
    /// state. A completed build is **bit-identical** to
    /// [`Graph::build`]'s (same FIFO expansion, same numbering), and the
    /// state-ceiling error fires at exactly the same expansion: per
    /// source state the successors are staged and committed only when
    /// they fit under the ceiling, so the committed prefix never exceeds
    /// the cap and the snapshot always re-expands from a whole-state
    /// boundary.
    ///
    /// Unlike [`Graph::build_cached`] this never consults the global
    /// graph memo, and it records the deterministic build counters only
    /// on completion — so an interrupted-and-resumed build leaves the
    /// same deterministic counter trail as a straight one.
    pub fn build_with_checkpoint(
        seed: &P,
        defs: &Defs,
        pool: &[Name],
        opts: Opts,
        budget: &Budget,
        cfg: &CheckpointCfg<GraphCheckpoint>,
    ) -> Result<Graph, Interrupted<GraphCheckpoint>> {
        Graph::continue_build(GraphCheckpoint::seed(seed, pool), defs, opts, budget, cfg)
    }

    /// Continues a checkpointed build from a snapshot produced by
    /// [`Graph::build_with_checkpoint`] (under a fresh — typically grown —
    /// budget). A snapshot with an empty pending queue is already
    /// complete and assembles immediately.
    pub fn resume_from(
        ck: GraphCheckpoint,
        defs: &Defs,
        opts: Opts,
        budget: &Budget,
        cfg: &CheckpointCfg<GraphCheckpoint>,
    ) -> Result<Graph, Interrupted<GraphCheckpoint>> {
        bpi_semantics::checkpoint::record_resume("graph");
        Graph::continue_build(ck, defs, opts, budget, cfg)
    }

    /// The engine behind [`Graph::build_with_checkpoint`] /
    /// [`Graph::resume_from`]: the same FIFO expansion as
    /// [`Graph::build_sequential_inner`], restarted from a snapshot, with
    /// commit-or-abort staging per source state.
    pub(crate) fn continue_build(
        ck: GraphCheckpoint,
        defs: &Defs,
        opts: Opts,
        budget: &Budget,
        cfg: &CheckpointCfg<GraphCheckpoint>,
    ) -> Result<Graph, Interrupted<GraphCheckpoint>> {
        let _span = bpi_obs::span("equiv.graph", "build_checkpointed");
        let GraphCheckpoint {
            mut states,
            mut edges,
            mut discarding,
            mut pending,
            pool,
        } = ck;
        assert_eq!(states.len(), edges.len(), "corrupt checkpoint: edges");
        assert_eq!(
            states.len(),
            discarding.len(),
            "corrupt checkpoint: discards"
        );
        let lts = Lts::new(defs);
        let pool_set = NameSet::from_iter(pool.iter().copied());
        let cap = opts.max_states.min(budget.max_states());
        #[allow(clippy::mutable_key_type)]
        let mut index: HashMap<Consed, usize> = states
            .iter()
            .enumerate()
            .map(|(i, s)| (bpi_core::cons(s), i))
            .collect();
        macro_rules! snapshot {
            () => {
                GraphCheckpoint {
                    states: states.clone(),
                    edges: edges.clone(),
                    discarding: discarding.clone(),
                    pending: pending.clone(),
                    pool: pool.clone(),
                }
            };
        }
        // Peek-then-commit: the front of `pending` stays queued until its
        // whole expansion is committed, so an interruption mid-state
        // re-expands it on resume (expansion is a pure function of the
        // state — the redo is invisible in the result).
        while let Some(&i) = pending.front() {
            if let Err(e) = (|| {
                bpi_semantics::chaos::pressure("equiv.graph.pressure")?;
                budget.check(0)?;
                cfg.burn_fuel()
            })() {
                record_snapshot("interrupt");
                return Err(Interrupted {
                    error: e,
                    checkpoint: snapshot!(),
                });
            }
            let src = states[i].clone();
            let src_free = bpi_core::cached_free_names(&src);
            let mut dyn_pool = pool.to_vec();
            for n in &src_free {
                if !pool_set.contains(n) && n.spelling().starts_with("#b") {
                    dyn_pool.push(n);
                }
            }
            let avoid = src_free.union(&pool_set);

            // Stage the expansion: fresh states are numbered as the
            // sequential build would number them, but inserted only if
            // the whole batch fits under the ceiling.
            let mut out: Vec<(Action, usize)> = Vec::new();
            let mut fresh: Vec<P> = Vec::new();
            #[allow(clippy::mutable_key_type)]
            let mut fresh_index: HashMap<Consed, usize> = HashMap::new();
            {
                let mut stage = |act: Action, cont: P| {
                    let state = normalize_state_cached(&cont, None);
                    let key = bpi_core::cons(&state);
                    let j = match index.get(&key).or_else(|| fresh_index.get(&key)) {
                        Some(&j) => j,
                        None => {
                            let j = states.len() + fresh.len();
                            fresh_index.insert(key, j);
                            fresh.push(state);
                            j
                        }
                    };
                    out.push((act, j));
                };
                for (act, cont) in step_transitions_cached(&lts, &src).iter() {
                    let (act, cont) = normalize_bound_output(act.clone(), cont.clone(), &avoid);
                    stage(act, cont);
                }
                for (act, cont) in input_transitions_cached(&lts, &src, &dyn_pool).iter() {
                    stage(act.clone(), cont.clone());
                }
            }
            if states.len() + fresh.len() > cap {
                // Same ceiling as the sequential build (committed states
                // never exceed `cap`), surfaced with a resumable snapshot
                // in which `i` is still pending.
                record_snapshot("interrupt");
                return Err(Interrupted {
                    error: EngineError::StateBudgetExceeded { limit: cap },
                    checkpoint: snapshot!(),
                });
            }
            let mut disc = NameSet::new();
            for &a in &dyn_pool {
                if lts.discards(&src, a) {
                    disc.insert(a);
                }
            }
            // Commit.
            pending.pop_front();
            for (key, &j) in &fresh_index {
                index.insert(key.clone(), j);
            }
            for state in fresh {
                pending.push_back(states.len());
                states.push(state);
                edges.push(Vec::new());
                discarding.push(NameSet::new());
            }
            edges[i] = out;
            discarding[i] = disc;
            cfg.maybe_snapshot(states.len() - pending.len(), || snapshot!());
        }
        Ok(Graph::from_parts(states, edges, discarding, pool))
    }

    /// Reassembles a graph from a **completed** build snapshot without
    /// recording build metrics (they were recorded when the original
    /// build finished).
    ///
    /// # Panics
    /// Panics if the snapshot still has pending states.
    pub fn from_complete_checkpoint(ck: GraphCheckpoint) -> Graph {
        assert!(
            ck.pending.is_empty(),
            "checkpoint is not a completed build (pending states remain)"
        );
        Graph::from_parts_record(ck.states, ck.edges, ck.discarding, ck.pool, false)
    }

    /// Assembles a graph from its construction output: builds the CSR
    /// mirror and the (empty) query caches.
    fn from_parts(
        states: Vec<P>,
        edges: Vec<Vec<(Action, usize)>>,
        discarding: Vec<NameSet>,
        pool: Vec<Name>,
    ) -> Graph {
        Graph::from_parts_record(states, edges, discarding, pool, true)
    }

    /// [`Graph::from_parts`] with the build metrics optionally silenced:
    /// the checkpoint layer reconstructs graphs from *completed* build
    /// snapshots whose counters were already recorded when the original
    /// build finished, and re-recording would break the deterministic
    /// metric parity between interrupted-and-resumed and straight runs.
    pub(crate) fn from_parts_record(
        states: Vec<P>,
        edges: Vec<Vec<(Action, usize)>>,
        discarding: Vec<NameSet>,
        pool: Vec<Name>,
        record: bool,
    ) -> Graph {
        let csr = {
            let _span = bpi_obs::span("equiv.graph", "csr_freeze");
            Csr::build(&edges, &pool, &discarding)
        };
        let caches = GraphCaches::new(states.len(), csr.num_labels(), csr.num_chans());
        let g = Graph {
            states,
            edges,
            discarding,
            pool,
            csr,
            caches,
        };
        if !record {
            return g;
        }
        if bpi_obs::metrics_enabled() {
            BUILDS.inc();
            BUILD_STATES.add(g.len() as u64);
            BUILD_EDGES.add(g.csr.num_edges() as u64);
            BUILD_LABELS.add(g.csr.num_labels() as u64);
            BUILD_CHANS.add(g.csr.num_chans() as u64);
        }
        bpi_obs::emit("equiv.graph", "built", || {
            vec![
                ("states", Value::from(g.len())),
                ("edges", Value::from(g.csr.num_edges())),
                ("labels", Value::from(g.csr.num_labels())),
                ("chans", Value::from(g.csr.num_chans())),
            ]
        });
        g
    }

    /// [`Graph::build_with_budget`] across `threads` crossbeam workers,
    /// reusing the shared frontier machinery of
    /// [`bpi_semantics::frontier`]. The outcome is **bit-for-bit
    /// identical** to the sequential build: per-state expansion is a pure
    /// function of the state (so edge lists and discard sets agree), and
    /// a canonical breadth-first renumber erases the scheduling-dependent
    /// discovery order. Budget semantics replay exactly — exceeding the
    /// state ceiling is a property of the reachable set, not of the
    /// schedule, so the same typed error comes back at any thread count
    /// (deadline/cancellation remain timing-dependent, as sequentially).
    pub fn build_parallel(
        seed: &P,
        defs: &Defs,
        pool: &[Name],
        opts: Opts,
        budget: &Budget,
        threads: usize,
    ) -> Result<Graph, EngineError> {
        let threads = threads.max(1);
        if threads == 1 {
            return Graph::build_with_budget(seed, defs, pool, opts, budget);
        }
        let _span = bpi_obs::span("equiv.graph", "build_parallel");
        let pool_set = NameSet::from_iter(pool.iter().copied());
        let cap = opts.max_states.min(budget.max_states());
        let s0 = normalize_state_cached(seed, None);
        let outcome = expand_frontier(
            s0,
            cap,
            budget,
            threads,
            /* stop_on_cap */ true,
            |src| {
                let lts = Lts::new(defs);
                let src_free = bpi_core::cached_free_names(src);
                let mut dyn_pool = pool.to_vec();
                for n in &src_free {
                    if !pool_set.contains(n) && n.spelling().starts_with("#b") {
                        dyn_pool.push(n);
                    }
                }
                let avoid = src_free.union(&pool_set);
                let mut succs = Vec::new();
                for (act, cont) in step_transitions_cached(&lts, src).iter() {
                    let (act, cont) = normalize_bound_output(act.clone(), cont.clone(), &avoid);
                    succs.push((act, normalize_state_cached(&cont, None)));
                }
                for (act, cont) in input_transitions_cached(&lts, src, &dyn_pool).iter() {
                    succs.push((act.clone(), normalize_state_cached(cont, None)));
                }
                let mut disc = NameSet::new();
                for &a in &dyn_pool {
                    if lts.discards(src, a) {
                        disc.insert(a);
                    }
                }
                Expansion { succs, meta: disc }
            },
        );
        if let Some(e) = outcome.interrupted {
            if matches!(e, EngineError::WorkerPanicked) && bpi_semantics::chaos::is_active() {
                // A chaos-injected worker panic, not a real engine fault:
                // fall back to the bit-identical sequential build without
                // recording the doomed attempt, so a chaos run leaves the
                // same deterministic counter trail as a calm one.
                return Graph::build_with_budget(seed, defs, pool, opts, budget);
            }
            record_build_err(&e);
            return Err(e);
        }
        let outcome = renumber_bfs(outcome);
        Ok(Graph::from_parts(
            outcome.states,
            outcome.edges,
            outcome.metas,
            pool.to_vec(),
        ))
    }

    /// [`Graph::build_with_budget`] through a global memo keyed by
    /// *(consed seed, defs generation, pool)*: the six bisimulation
    /// variants, the congruence layer, distinguishing-formula extraction
    /// and the modal logic all rebuild the same graphs, and a completed
    /// build is a pure function of that key.
    ///
    /// Budget semantics are replayed exactly: a memoized graph is always
    /// *complete*, so the original build would have failed iff the graph
    /// needs more states than the effective ceiling allows — in which
    /// case the same typed error is returned without rebuilding.
    pub fn build_cached(
        seed: &P,
        defs: &Defs,
        pool: &[Name],
        opts: Opts,
        budget: &Budget,
    ) -> Result<Arc<Graph>, EngineError> {
        Graph::build_cached_threads(seed, defs, pool, opts, budget, 1)
    }

    /// [`Graph::build_cached`] building cache misses with
    /// [`Graph::build_parallel`] across `threads` workers. Because the
    /// parallel build is bit-for-bit identical to the sequential one, the
    /// memo may be shared freely between thread counts.
    pub fn build_cached_threads(
        seed: &P,
        defs: &Defs,
        pool: &[Name],
        opts: Opts,
        budget: &Budget,
        threads: usize,
    ) -> Result<Arc<Graph>, EngineError> {
        budget.check(0)?;
        // Chaos injection point: a seeded delay widens the window between
        // the memo probe and the insert, exercising the double-build race
        // (benign — both builds are bit-identical).
        bpi_semantics::chaos::delay("equiv.graph.memo");
        let cap = opts.max_states.min(budget.max_states());
        let key = (bpi_core::cons(seed), defs.generation(), pool.to_vec());
        if let Some(g) = GRAPH_MEMO.read().get(&key) {
            MEMO_HITS.inc();
            if g.len() > cap {
                let e = EngineError::StateBudgetExceeded { limit: cap };
                record_build_err(&e);
                return Err(e);
            }
            return Ok(g.clone());
        }
        MEMO_MISSES.inc();
        let g = Arc::new(Graph::build_parallel(
            seed, defs, pool, opts, budget, threads,
        )?);
        let mut memo = GRAPH_MEMO.write();
        if memo.len() >= GRAPH_MEMO_CAP {
            memo.clear();
        }
        memo.insert(key, g.clone());
        Ok(g)
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The CSR mirror of the transition structure (interned labels, flat
    /// offset/target arrays, lazy predecessor index).
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// State `i`'s edges as `(label id, target)` pairs from the flat CSR
    /// arrays — the allocation-free form the refiners iterate.
    pub fn edge_ids(&self, i: usize) -> impl Iterator<Item = (u32, usize)> + '_ {
        self.csr
            .range(i)
            .map(move |e| (self.csr.edge_labels[e], self.csr.edge_targets[e] as usize))
    }

    /// The interned label with id `lid`.
    pub fn label(&self, lid: u32) -> &Action {
        &self.csr.labels[lid as usize]
    }

    /// τ-successors of state `i`.
    pub fn tau_succs(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.edge_ids(i)
            .filter(|(l, _)| self.csr.kind(*l) & K_TAU != 0)
            .map(|(_, j)| j)
    }

    /// Output edges of state `i`.
    pub fn out_edges(&self, i: usize) -> impl Iterator<Item = (&Action, usize)> + '_ {
        self.edge_ids(i)
            .filter(|(l, _)| self.csr.kind(*l) & K_OUT != 0)
            .map(|(l, j)| (self.label(l), j))
    }

    /// Input edges of state `i`.
    pub fn input_edges(&self, i: usize) -> impl Iterator<Item = (&Action, usize)> + '_ {
        self.edge_ids(i)
            .filter(|(l, _)| self.csr.kind(*l) & K_IN != 0)
            .map(|(l, j)| (self.label(l), j))
    }

    /// Step-move edges (`τ` or output) of state `i`.
    pub fn step_edges(&self, i: usize) -> impl Iterator<Item = (&Action, usize)> + '_ {
        self.edge_ids(i)
            .filter(|(l, _)| self.csr.kind(*l) & K_STEP != 0)
            .map(|(l, j)| (self.label(l), j))
    }

    /// Whether state `i` discards channel `a`.
    pub fn state_discards(&self, i: usize, a: Name) -> bool {
        self.discarding[i].contains(a)
    }

    /// Whether any label of this graph is a bound (extruding) output.
    /// The compositional engine of [`crate::compose`] cannot push a
    /// restriction over a synchronized product, so scope extrusion in
    /// any component forces the monolithic fallback.
    pub fn has_bound_output_labels(&self) -> bool {
        self.csr
            .labels()
            .iter()
            .any(|a| !a.bound_names().is_empty())
    }

    /// Whether every state of this graph either discards or *visibly*
    /// listens on every pool channel — i.e. has no "silent blocker": a
    /// state that neither discards `a` nor carries any input edge on `a`
    /// (an inner parallel component listening at a different arity than
    /// its sibling, rule (12) with an empty receive set). Such a state
    /// blocks broadcasts on `a` while being labelled-bisimilar to one
    /// that discards them, so the quotient step of the compositional
    /// engine is only sound when this holds.
    pub fn covers_pool(&self) -> bool {
        (0..self.len()).all(|i| {
            let mut heard = NameSet::new();
            for (act, _) in self.input_edges(i) {
                heard.insert(act.subject().expect("input labels have a subject"));
            }
            self.pool
                .iter()
                .all(|&a| heard.contains(a) || self.state_discards(i, a))
        })
    }

    /// τ-closure of `i` (including `i`), as a sorted set. Computed once
    /// per state and shared.
    pub fn tau_closure(&self, i: usize) -> Arc<BTreeSet<usize>> {
        self.caches.tau_closure[i]
            .get_or_init(|| Arc::new(self.closure(i, K_TAU)))
            .clone()
    }

    /// Step-closure of `i` (τ and outputs), including `i`. Cached.
    pub fn step_closure(&self, i: usize) -> Arc<BTreeSet<usize>> {
        self.caches.step_closure[i]
            .get_or_init(|| Arc::new(self.closure(i, K_STEP)))
            .clone()
    }

    fn closure(&self, i: usize, mask: u8) -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([i]);
        let mut work = vec![i];
        while let Some(k) = work.pop() {
            for e in self.csr.range(k) {
                if self.csr.kinds[self.csr.edge_labels[e] as usize] & mask != 0 {
                    let j = self.csr.edge_targets[e] as usize;
                    if seen.insert(j) {
                        work.push(j);
                    }
                }
            }
        }
        seen
    }

    /// Strong barbs of state `i`: subjects of its output edges. Cached.
    pub fn strong_barbs(&self, i: usize) -> NameSet {
        self.caches.strong_barbs[i]
            .get_or_init(|| NameSet::from_iter(self.out_edges(i).filter_map(|(a, _)| a.subject())))
            .clone()
    }

    /// Weak barbs of state `i`. Cached.
    pub fn weak_barbs(&self, i: usize) -> NameSet {
        self.caches.weak_barbs[i]
            .get_or_init(|| {
                let mut s = NameSet::new();
                for &j in self.tau_closure(i).iter() {
                    s.extend(&self.strong_barbs(j));
                }
                s
            })
            .clone()
    }

    /// Weak step-barbs of state `i` (`⇓ₐ^φ`). Cached.
    pub fn weak_step_barbs(&self, i: usize) -> NameSet {
        self.caches.weak_step_barbs[i]
            .get_or_init(|| {
                let mut s = NameSet::new();
                for &j in self.step_closure(i).iter() {
                    s.extend(&self.strong_barbs(j));
                }
                s
            })
            .clone()
    }

    /// Weak moves `i ⇒ —α→ ⇒` for a specific non-τ label. Cached per
    /// *(state, label id)* in a dense slab; a label that never occurs in
    /// this graph answers the shared empty set without caching anything.
    pub fn weak_label(&self, i: usize, label: &Action) -> Arc<BTreeSet<usize>> {
        match self.csr.label_id(label) {
            Some(lid) => self.weak_label_id(i, lid),
            None => EMPTY_STATES.clone(),
        }
    }

    /// [`Graph::weak_label`] by interned label id (the refiner hot path).
    pub fn weak_label_id(&self, i: usize, lid: u32) -> Arc<BTreeSet<usize>> {
        self.caches
            .weak_label
            .get_or_init(i * self.csr.num_labels() + lid as usize, || {
                let mut out = BTreeSet::new();
                for &j in self.tau_closure(i).iter() {
                    for e in self.csr.range(j) {
                        if self.csr.edge_labels[e] == lid {
                            out.extend(
                                self.tau_closure(self.csr.edge_targets[e] as usize)
                                    .iter()
                                    .copied(),
                            );
                        }
                    }
                }
                Arc::new(out)
            })
    }

    /// Weak discard set: states `j'` with `i ⇒ j₁ —a:→ j₁ ⇒ j'` — i.e.
    /// τ-reachable continuations of τ-reachable states that discard `a`.
    /// Cached per *(state, channel id)*; channels outside the table are
    /// discarded by no state.
    pub fn weak_discard(&self, i: usize, a: Name) -> Arc<BTreeSet<usize>> {
        let Some(cid) = self.csr.chan_id(a) else {
            return EMPTY_STATES.clone();
        };
        self.caches
            .weak_discard
            .get_or_init(i * self.csr.num_chans() + cid as usize, || {
                let mut out = BTreeSet::new();
                for &j in self.tau_closure(i).iter() {
                    if self.state_discards(j, a) {
                        out.extend(self.tau_closure(j).iter().copied());
                    }
                }
                Arc::new(out)
            })
    }

    /// All input labels on channel `a` reachable in the τ-closure of `i`
    /// (used when matching discard moves weakly). Cached per
    /// *(state, channel id)*.
    pub fn weak_input_labels(&self, i: usize, a: Name) -> Arc<BTreeSet<Action>> {
        let Some(cid) = self.csr.chan_id(a) else {
            return EMPTY_ACTIONS.clone();
        };
        self.caches
            .weak_input_labels
            .get_or_init(i * self.csr.num_chans() + cid as usize, || {
                let mut out = BTreeSet::new();
                for &j in self.tau_closure(i).iter() {
                    for e in self.csr.range(j) {
                        let lid = self.csr.edge_labels[e] as usize;
                        if self.csr.kinds[lid] & K_IN != 0 && self.csr.label_chan[lid] == cid {
                            out.insert(self.csr.labels[lid].clone());
                        }
                    }
                }
                Arc::new(out)
            })
    }

    /// The arities at which any state of the graph listens on `a`.
    /// Cached per channel id — and computed from the interned label
    /// table alone (a label occurs there iff it occurs on some edge), so
    /// even the cold path never walks the edges.
    pub fn arities_on(&self, a: Name) -> Arc<BTreeSet<usize>> {
        let Some(cid) = self.csr.chan_id(a) else {
            return EMPTY_STATES.clone();
        };
        self.caches.arities_on.get_or_init(cid as usize, || {
            let mut out = BTreeSet::new();
            for lid in 0..self.csr.num_labels() {
                if self.csr.kinds[lid] & K_IN != 0 && self.csr.label_chan[lid] == cid {
                    out.insert(self.csr.label_arity[lid] as usize);
                }
            }
            Arc::new(out)
        })
    }

    /// Dependency sets shared by the worklist refiners: `deps[x]` is the
    /// set of states whose transfer check can reference state `x`. For
    /// the strong variants that is the direct predecessors plus the
    /// diagonal (input-or-discard self-moves); for the weak variants the
    /// match sets are τ-closures, so it is the inverse *transitive*
    /// reachability over all edges. Computed once per graph and cached —
    /// the weak sets in particular are a whole-graph BFS per state, and
    /// recomputing them on every refine call was the BENCH_5
    /// `scaled-sums/weak-labelled` 0.91× regression.
    pub(crate) fn dependents(&self, weak: bool) -> Arc<Vec<Vec<usize>>> {
        let slot = if weak {
            &self.caches.deps_weak
        } else {
            &self.caches.deps_strong
        };
        slot.get_or_init(|| {
            let n = self.len();
            let deps = (0..n)
                .map(|x| {
                    let mut seen = BTreeSet::from([x]);
                    if weak {
                        let mut work = vec![x];
                        while let Some(k) = work.pop() {
                            for &(_, p) in self.csr.preds_of(k) {
                                if seen.insert(p as usize) {
                                    work.push(p as usize);
                                }
                            }
                        }
                    } else {
                        seen.extend(self.csr.preds_of(x).iter().map(|&(_, p)| p as usize));
                    }
                    seen.into_iter().collect()
                })
                .collect();
            Arc::new(deps)
        })
        .clone()
    }
}

/// Enumerates the collapsing substitutions induced by all partitions of
/// `names` (each equivalence class is mapped to its least element). By
/// Lemma 17.1 + Lemma 18 these finitely many substitutions suffice to
/// decide the ∀σ quantification of `~c` (Definition 11).
pub fn identification_substs(names: &NameSet) -> Vec<Subst> {
    let names: Vec<Name> = names.to_vec();
    let mut out = Vec::new();
    // Enumerate set partitions via restricted growth strings.
    fn go(names: &[Name], assignment: &mut Vec<usize>, max_block: usize, out: &mut Vec<Subst>) {
        if assignment.len() == names.len() {
            let mut blocks: BTreeMap<usize, Vec<Name>> = BTreeMap::new();
            for (idx, &b) in assignment.iter().enumerate() {
                blocks.entry(b).or_default().push(names[idx]);
            }
            let mut s = Subst::identity();
            for block in blocks.values() {
                let rep = block[0];
                for &n in &block[1..] {
                    s.bind(n, rep);
                }
            }
            out.push(s);
            return;
        }
        for b in 0..=max_block {
            assignment.push(b);
            go(
                names,
                assignment,
                max_block.max(b + 1).min(names.len()),
                out,
            );
            assignment.pop();
        }
    }
    if names.is_empty() {
        return vec![Subst::identity()];
    }
    go(&names, &mut Vec::new(), 0, &mut out);
    out
}

/// The input tuple space of a channel over a pool, for a set of arities.
pub fn label_space(pool: &[Name], arities: &BTreeSet<usize>) -> Vec<Vec<Name>> {
    let mut out = Vec::new();
    for &n in arities {
        out.extend(tuples(pool, n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpi_core::builder::*;

    #[test]
    fn graph_of_simple_output() {
        let defs = Defs::new();
        let [a, v] = names(["a", "v"]);
        let p = out_(a, [v]);
        let q = nil();
        let pool = shared_pool(&p, &q, 1);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.out_edges(0).count(), 1);
        assert!(g.state_discards(0, a), "output prefixes discard");
    }

    #[test]
    fn input_edges_cover_pool() {
        let defs = Defs::new();
        let [a, x] = names(["a", "x"]);
        let p = inp(a, [x], out_(x, []));
        let pool = shared_pool(&p, &nil(), 1); // {a} + one fresh
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        assert_eq!(g.input_edges(0).count(), 2);
        assert!(!g.state_discards(0, a));
    }

    #[test]
    fn bound_outputs_are_normalised() {
        let defs = Defs::new();
        let [a, x] = names(["a", "x"]);
        let p = new(x, out(a, [x], out_(x, [])));
        let pool = shared_pool(&p, &nil(), 1);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        let (act, _) = g.out_edges(0).next().unwrap();
        assert_eq!(act.bound_names().len(), 1);
        assert_eq!(act.bound_names()[0].spelling(), "#b0");
        // Re-building yields the identical label: determinism.
        let g2 = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        let (act2, _) = g2.out_edges(0).next().unwrap();
        assert_eq!(act, act2);
    }

    #[test]
    fn extrusion_recursion_has_finite_graph() {
        // (rec X(a). νt āt.X⟨a⟩)⟨a⟩: with normalised bound outputs the
        // graph is finite.
        let defs = Defs::new();
        let [a, t] = names(["a", "t"]);
        let xid = bpi_core::syntax::Ident::new("GExtr");
        let p = rec(xid, [a], new(t, out(a, [t], var(xid, [a]))), [a]);
        let pool = shared_pool(&p, &nil(), 1);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        assert_eq!(g.len(), 1, "states: {:?}", g.states);
    }

    #[test]
    fn closures_and_barbs() {
        let defs = Defs::new();
        let [a, b] = names(["a", "b"]);
        let p = sum(tau(out_(a, [])), out_(b, []));
        let pool = shared_pool(&p, &nil(), 0);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        assert_eq!(g.strong_barbs(0).to_vec(), vec![b]);
        assert_eq!(g.weak_barbs(0).to_vec(), vec![a, b]);
        assert_eq!(g.tau_closure(0).len(), 2);
    }

    #[test]
    fn identification_substs_enumerate_partitions() {
        let [a, b, c] = names(["a", "b", "c"]);
        let subs = identification_substs(&NameSet::from_iter([a, b, c]));
        assert_eq!(subs.len(), 5, "Bell(3) = 5");
        assert!(subs.iter().any(|s| s.is_identity()));
        // The all-identified substitution maps b and c to a.
        assert!(subs.iter().any(|s| s.apply(b) == a && s.apply(c) == a));
    }

    #[test]
    fn build_exhaustion_is_typed_not_a_panic() {
        // GPump(a) = τ.(ā ‖ GPump⟨a⟩) grows without bound; both the
        // opts ceiling and an explicit Budget must surface as Err.
        let defs = Defs::new();
        let [a] = names(["a"]);
        let xid = bpi_core::syntax::Ident::new("GPump");
        let p = rec(xid, [a], tau(par(out_(a, []), var(xid, [a]))), [a]);
        let pool = shared_pool(&p, &nil(), 1);
        let small = Opts {
            max_states: 6,
            fresh_inputs: 1,
        };
        assert_eq!(
            Graph::build(&p, &defs, &pool, small).err(),
            Some(EngineError::StateBudgetExceeded { limit: 6 })
        );
        assert_eq!(
            Graph::build_with_budget(&p, &defs, &pool, Opts::default(), &Budget::states(3)).err(),
            Some(EngineError::StateBudgetExceeded { limit: 3 })
        );
        // A generous ceiling on a finite system still succeeds.
        let q = out_(a, []);
        assert!(
            Graph::build_with_budget(&q, &defs, &pool, Opts::default(), &Budget::states(100))
                .is_ok()
        );
    }

    #[test]
    fn csr_mirrors_nested_edges() {
        let defs = Defs::new();
        let [a, x] = names(["a", "x"]);
        let p = par(inp(a, [x], out_(x, [])), out_(a, [a]));
        let pool = shared_pool(&p, &nil(), 1);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        let csr = g.csr();
        assert_eq!(csr.num_edges(), g.edges.iter().map(Vec::len).sum::<usize>());
        for i in 0..g.len() {
            let flat: Vec<(Action, usize)> = g
                .edge_ids(i)
                .map(|(l, j)| (g.label(l).clone(), j))
                .collect();
            assert_eq!(flat, g.edges[i], "state {i} flat/nested mismatch");
        }
        // Predecessor index inverts the edge relation exactly.
        let mut from_preds: Vec<(usize, Action, usize)> = Vec::new();
        for t in 0..g.len() {
            for &(lid, src) in csr.preds_of(t) {
                from_preds.push((src as usize, g.label(lid).clone(), t));
            }
        }
        let mut from_edges: Vec<(usize, Action, usize)> = Vec::new();
        for (i, es) in g.edges.iter().enumerate() {
            for (act, j) in es {
                from_edges.push((i, act.clone(), *j));
            }
        }
        from_preds.sort();
        from_edges.sort();
        assert_eq!(from_preds, from_edges);
        // Per-label predecessor ranges partition each block.
        for t in 0..g.len() {
            let total: usize = (0..csr.num_labels() as u32)
                .map(|lid| csr.preds_of_label(t, lid).len())
                .sum();
            assert_eq!(total, csr.preds_of(t).len());
        }
    }

    #[test]
    fn unknown_labels_and_channels_answer_empty() {
        let defs = Defs::new();
        let [a, zz] = names(["a", "zz"]);
        let p = out_(a, []);
        let pool = shared_pool(&p, &nil(), 1);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        assert!(g.csr().chan_id(zz).is_none());
        assert!(g.weak_discard(0, zz).is_empty());
        assert!(g.weak_input_labels(0, zz).is_empty());
        assert!(g.arities_on(zz).is_empty());
        let alien = Action::Output {
            chan: zz,
            objects: vec![],
            bound: vec![],
        };
        assert!(g.csr().label_id(&alien).is_none());
        assert!(g.weak_label(0, &alien).is_empty());
    }

    #[test]
    fn build_parallel_is_bit_identical_to_sequential() {
        let defs = Defs::new();
        let [a, b, x] = names(["a", "b", "x"]);
        let p = par(
            inp(a, [x], out_(x, [])),
            par(
                out(a, [b], out_(b, [])),
                sum(tau(out_(a, [])), inp_(b, [x])),
            ),
        );
        let pool = shared_pool(&p, &nil(), 1);
        let g1 = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        for threads in [2, 4] {
            let g2 = Graph::build_parallel(
                &p,
                &defs,
                &pool,
                Opts::default(),
                &Budget::unlimited(),
                threads,
            )
            .unwrap();
            assert_eq!(g1.states, g2.states, "threads={threads}");
            assert_eq!(g1.edges, g2.edges, "threads={threads}");
            assert_eq!(
                g1.discarding.iter().map(|d| d.to_vec()).collect::<Vec<_>>(),
                g2.discarding.iter().map(|d| d.to_vec()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn build_parallel_replays_budget_errors() {
        let defs = Defs::new();
        let [a] = names(["a"]);
        let xid = bpi_core::syntax::Ident::new("GPumpPar");
        let p = rec(xid, [a], tau(par(out_(a, []), var(xid, [a]))), [a]);
        let pool = shared_pool(&p, &nil(), 1);
        let seq = Graph::build_with_budget(&p, &defs, &pool, Opts::default(), &Budget::states(4));
        for threads in [2, 4] {
            let par = Graph::build_parallel(
                &p,
                &defs,
                &pool,
                Opts::default(),
                &Budget::states(4),
                threads,
            );
            assert_eq!(par.as_ref().err(), seq.as_ref().err(), "threads={threads}");
        }
    }

    #[test]
    fn weak_discard_traverses_taus() {
        let defs = Defs::new();
        let [a, x] = names(["a", "x"]);
        // a(x).nil + τ.nil : can weakly discard a by taking the τ.
        let p = sum(inp_(a, [x]), tau_());
        let pool = shared_pool(&p, &nil(), 1);
        let g = Graph::build(&p, &defs, &pool, Opts::default()).unwrap();
        assert!(!g.state_discards(0, a));
        assert!(!g.weak_discard(0, a).is_empty());
    }
}
