//! Coarsest-partition refinement over the frozen CSR graphs: the
//! block/splitter engine that replaces O(n₁·n₂) pair tables with a
//! partition of the *disjoint union* of the two graphs.
//!
//! ## Algorithm
//!
//! Kanellakis–Smolka signature refinement with the Paige–Tarjan
//! "process the smaller half" discipline. Every union state carries a
//! *signature* — a canonical encoding of what the transfer property of
//! the chosen [`Variant`] can observe about it through the current
//! partition (barbs, plus per-label block sets of its move targets; see
//! [`Refiner::signature`]). Start from the single-block partition and
//! repeatedly split blocks whose members' signatures diverge, until
//! every block is signature-homogeneous. Two invariants carry the
//! correctness argument (DESIGN.md §12):
//!
//! * **Never over-splits.** If two states are bisimilar, their
//!   signatures agree with respect to *any* partition coarser than
//!   bisimilarity (block sets project along partition refinement), so
//!   the refinement never separates a bisimilar pair and the split
//!   order is irrelevant to the result.
//! * **Stability at quiescence.** When no signature diverges inside any
//!   block, the induced equivalence is a bisimulation for the variant —
//!   for the weak variants this is the classic left-saturation argument
//!   (the strong-left/weak-right fixpoint equals the fully saturated
//!   one), with the saturated match sets (`tau_closure`, `weak_label`,
//!   `weak_discard`) taken directly from the [`Graph`] caches the
//!   pairwise `direction` predicate uses.
//!
//! Together: the final partition *is* bisimilarity on the union, and
//! [`partition_to_relation`] restricts it to cross pairs — the same
//! relation every pairwise engine computes.
//!
//! The smaller-half discipline lives in the split step: the largest
//! signature class keeps the block id, so only the members of the
//! smaller classes change block — and only *their* dependents (inverse
//! edges for the strong variants, inverse reachability for the weak
//! ones, shared with the worklist engines via the per-graph dependency
//! cache) are re-examined. Work is proportional to what actually moved,
//! never to the size of the block that stayed.
//!
//! ## The mixed-arity guard
//!
//! Labelled bisimilarity matches inputs by *input-or-discard*, and with
//! mixed input arities on one channel the pairwise relation is not
//! transitive (`a(x).0 ~ 0` and `0 ~ a(x,y).0` but `a(x).0 ≁
//! a(x,y).0`), so **no** partition agrees with it pointwise.
//! [`partition_safe`] detects exactly this — some channel carrying
//! input labels of two different arities across the two graphs, or
//! differing pools — and the adaptive dispatch falls back to the
//! pairwise worklist there. On arity-uniform products (every generator
//! corpus in `worklist_oracle.rs`, and any monadic system) the discard
//! self-loop folds into the per-label signature and the partition is
//! exact for all six variants.
//!
//! ## Resumability
//!
//! [`refine_partition_budgeted`] polls the [`Budget`], chaos pressure
//! and the checkpoint fuel at every round boundary and returns
//! [`Interrupted`] carrying a [`PartitionCheckpoint`] — the block
//! assignment and the dirty-state worklist, *not* a pair relation, so
//! the snapshot stays linear in the state count. [`refine_partition_resume`]
//! rebuilds the signature buckets from the block array (signatures of
//! clean states are pure functions of the partition) and continues
//! bit-for-bit: same final partition, same round and split counts.

use crate::bisim::{PairRelation, Variant};
use crate::checkpoint::PartitionCheckpoint;
use crate::graph::Graph;
use bpi_core::action::Action;
use bpi_core::name::Name;
use bpi_obs::{counter, Counter, Det, Value};
use bpi_semantics::budget::Budget;
use bpi_semantics::checkpoint::{record_resume, record_snapshot, CheckpointCfg, Interrupted};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, LazyLock};

// All three are result-derived and deterministic: the engine is
// sequential with a fixed processing order, the dispatch is
// thread-independent, and an interrupted-and-resumed run replays the
// same rounds and splits as an uninterrupted one (counters are recorded
// once, on completion, from totals carried through the checkpoint).
static PARTITION_BLOCKS: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.partition.blocks", Det::Deterministic));
static PARTITION_SPLITS: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.partition.splits", Det::Deterministic));
static PARTITION_ROUNDS: LazyLock<&Counter> =
    LazyLock::new(|| counter("equiv.partition.rounds", Det::Deterministic));

fn record_partition(part: &Partition, rounds: u64, splits: u64) {
    if !bpi_obs::metrics_enabled() && !bpi_obs::tracing_enabled() {
        return;
    }
    if bpi_obs::metrics_enabled() {
        PARTITION_BLOCKS.add(part.num_blocks as u64);
        PARTITION_SPLITS.add(splits);
        PARTITION_ROUNDS.add(rounds);
    }
    bpi_obs::emit("equiv.partition", "done", || {
        vec![
            ("states", Value::from(part.blocks.len())),
            ("blocks", Value::from(part.num_blocks)),
            ("splits", Value::from(splits as usize)),
            ("rounds", Value::from(rounds as usize)),
        ]
    });
}

/// A stable partition of the disjoint union of two graphs (`g2` states
/// are offset by `n1`; `n2 == 0` for a self-partition). Block ids are
/// canonical: numbered by first occurrence scanning union states in
/// order, so equal partitions have equal `blocks` arrays regardless of
/// the refinement schedule that produced them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    pub n1: usize,
    pub n2: usize,
    pub blocks: Vec<u32>,
    pub num_blocks: usize,
}

impl Partition {
    /// Whether union states `u` and `w` landed in the same block.
    pub fn same_block(&self, u: usize, w: usize) -> bool {
        self.blocks[u] == self.blocks[w]
    }
}

/// Restricts a union partition to the cross pairs: `(i, j)` related iff
/// `g1`'s state `i` and `g2`'s state `j` share a block. On
/// partition-safe products this is exactly the greatest fixpoint the
/// pairwise engines compute (`partition_oracle.rs` proves it pointwise).
pub fn partition_to_relation(part: &Partition) -> PairRelation {
    let rel = (0..part.n1)
        .map(|i| {
            (0..part.n2)
                .map(|j| part.blocks[i] == part.blocks[part.n1 + j])
                .collect()
        })
        .collect();
    PairRelation { rel }
}

/// Whether the partition refiner agrees with the pairwise engines on
/// this product: the pools must coincide and every channel must carry
/// input labels of at most one arity across *both* graphs. With mixed
/// arities the input-or-discard clause makes the pairwise relation
/// non-transitive, so no partition can reproduce it (module docs); the
/// dispatch falls back to the worklist instead.
pub fn partition_safe(g1: &Graph, g2: &Graph) -> bool {
    if g1.pool != g2.pool {
        return false;
    }
    let mut arity: BTreeMap<Name, usize> = BTreeMap::new();
    for g in [g1, g2] {
        for act in g.csr().labels() {
            if !act.is_input() {
                continue;
            }
            let a = act.subject().expect("input labels have a subject");
            let k = act.objects().len();
            match arity.get(&a) {
                Some(&k0) if k0 != k => return false,
                Some(_) => {}
                None => {
                    arity.insert(a, k);
                }
            }
        }
    }
    true
}

/// [`partition_safe`] for a single graph (self-partition / quotient).
pub fn partition_safe_self(g: &Graph) -> bool {
    partition_safe(g, g)
}

/// A state's signature: sorted `(component key, sorted data)` pairs.
/// Key 0 encodes the variant's barb set (joint channel ids), key 1 the
/// unlabelled move component (τ successors, step successors, or their
/// closures), key `2 + l` the block set reachable under joint label
/// `l`. Empty components are omitted — uniformly, so omission itself
/// never distinguishes states spuriously.
type Sig = Vec<(u32, Vec<u32>)>;

const KEY_BARBS: u32 = 0;
const KEY_MOVES: u32 = 1;
const KEY_LABEL: u32 = 2;

/// The disjoint-union view: joint label and channel interning across
/// one or two graphs, built eagerly and deterministically (sorted
/// tables) so signatures are comparable across the union and across
/// interrupted/resumed runs.
struct UnionView<'a> {
    g1: &'a Graph,
    g2: Option<&'a Graph>,
    n1: usize,
    n: usize,
    /// Sorted joint label table.
    labels: Vec<Action>,
    /// Local label id → joint label id, per part.
    lmap1: Vec<u32>,
    lmap2: Vec<u32>,
    /// Joint channel interning for barb components.
    chan_ids: BTreeMap<Name, u32>,
    /// Joint *input* label ids grouped by subject channel — the labels a
    /// discard self-loop answers.
    inputs_by_chan: BTreeMap<Name, Vec<u32>>,
}

impl<'a> UnionView<'a> {
    fn new(g1: &'a Graph, g2: Option<&'a Graph>) -> UnionView<'a> {
        let n1 = g1.len();
        let n = n1 + g2.map_or(0, |g| g.len());
        let parts: Vec<&Graph> = std::iter::once(g1).chain(g2).collect();
        let mut label_set: BTreeSet<Action> = BTreeSet::new();
        let mut names: BTreeSet<Name> = BTreeSet::new();
        for g in &parts {
            label_set.extend(g.csr().labels().iter().cloned());
            for act in g.csr().labels() {
                if let Some(a) = act.subject() {
                    names.insert(a);
                }
            }
            for ds in &g.discarding {
                names.extend(ds.iter());
            }
            names.extend(g.pool.iter().copied());
        }
        let labels: Vec<Action> = label_set.into_iter().collect();
        let index: BTreeMap<&Action, u32> = labels
            .iter()
            .enumerate()
            .map(|(i, a)| (a, i as u32))
            .collect();
        let lmap = |g: &Graph| -> Vec<u32> { g.csr().labels().iter().map(|a| index[a]).collect() };
        let lmap1 = lmap(g1);
        let lmap2 = g2.map(lmap).unwrap_or_default();
        let chan_ids = names
            .into_iter()
            .enumerate()
            .map(|(i, a)| (a, i as u32))
            .collect();
        let mut inputs_by_chan: BTreeMap<Name, Vec<u32>> = BTreeMap::new();
        for (jl, act) in labels.iter().enumerate() {
            if act.is_input() {
                let a = act.subject().expect("input labels have a subject");
                inputs_by_chan.entry(a).or_default().push(jl as u32);
            }
        }
        UnionView {
            g1,
            g2,
            n1,
            n,
            labels,
            lmap1,
            lmap2,
            chan_ids,
            inputs_by_chan,
        }
    }

    /// Resolves a union state to its graph, local index and offset.
    fn part(&self, u: usize) -> (&'a Graph, usize, usize) {
        if u < self.n1 {
            (self.g1, u, 0)
        } else {
            (
                self.g2.expect("offset state implies a second part"),
                u - self.n1,
                self.n1,
            )
        }
    }
}

fn push_names(
    sig: &mut Sig,
    key: u32,
    names: impl Iterator<Item = Name>,
    ids: &BTreeMap<Name, u32>,
) {
    let data: Vec<u32> = names.map(|a| ids[&a]).collect();
    if !data.is_empty() {
        sig.push((key, data));
    }
}

fn push_blocks(sig: &mut Sig, key: u32, it: impl Iterator<Item = u32>) {
    let set: BTreeSet<u32> = it.collect();
    if !set.is_empty() {
        sig.push((key, set.into_iter().collect()));
    }
}

/// The mutable refinement state. Each block keeps its members bucketed
/// by stored signature; a round recomputes signatures of the dirty
/// states only (dependents of last round's moved states), rebuckets the
/// changed ones, then splits every touched block — the largest bucket
/// keeps the block id (ties: first in signature order), every other
/// bucket becomes a fresh block and dirties its members' dependents.
struct Refiner<'a> {
    view: UnionView<'a>,
    v: Variant,
    blk: Vec<u32>,
    /// Per block: members (sorted) grouped by their stored signature.
    blocks: Vec<BTreeMap<Sig, BTreeSet<u32>>>,
    /// Stored signature per state; `None` until first bucketed.
    sigs: Vec<Option<Sig>>,
    dirty: VecDeque<u32>,
    in_dirty: Vec<bool>,
    deps1: Arc<Vec<Vec<usize>>>,
    deps2: Option<Arc<Vec<Vec<usize>>>>,
    rounds: u64,
    splits: u64,
    /// Worker threads for the signature recomputation inside a round.
    /// `1` (the default everywhere except the explicitly parallel entry
    /// points) keeps the whole round on the calling thread.
    threads: usize,
}

/// Dirty-queue size below which a round recomputes signatures inline:
/// late rounds touch a handful of states and a crossbeam scope spawn
/// would swamp them (same reasoning as the pairwise engine's
/// `PAR_ROUND_MIN`).
const PAR_SIG_MIN: usize = 1024;

impl<'a> Refiner<'a> {
    fn new(v: Variant, g1: &'a Graph, g2: Option<&'a Graph>) -> Refiner<'a> {
        let view = UnionView::new(g1, g2);
        let n = view.n;
        let weak = v.is_weak();
        Refiner {
            deps1: g1.dependents(weak),
            deps2: g2.map(|g| g.dependents(weak)),
            view,
            v,
            blk: vec![0; n],
            blocks: vec![BTreeMap::new()],
            sigs: vec![None; n],
            dirty: (0..n as u32).collect(),
            in_dirty: vec![true; n],
            rounds: 0,
            splits: 0,
            threads: 1,
        }
    }

    /// Restores a round-boundary snapshot: the block array and dirty
    /// queue come from the checkpoint; buckets are rebuilt by
    /// recomputing signatures of the *clean* states (pure functions of
    /// the partition, so identical to the values the interrupted run
    /// stored). Dirty states stay unbucketed and re-enter through the
    /// normal round path, exactly as they would have.
    fn restore(
        v: Variant,
        g1: &'a Graph,
        g2: Option<&'a Graph>,
        ck: PartitionCheckpoint,
    ) -> Refiner<'a> {
        let mut r = Refiner::new(v, g1, g2);
        assert_eq!(ck.blocks.len(), r.view.n, "checkpoint/graph state mismatch");
        assert_eq!(ck.n1, r.view.n1, "checkpoint/graph split mismatch");
        r.blk = ck.blocks;
        let num_blocks = r.blk.iter().map(|&b| b as usize + 1).max().unwrap_or(1);
        r.blocks = vec![BTreeMap::new(); num_blocks];
        r.in_dirty = vec![false; r.view.n];
        for &u in &ck.worklist {
            r.in_dirty[u as usize] = true;
        }
        r.dirty = ck.worklist;
        for u in 0..r.view.n {
            if r.in_dirty[u] {
                continue;
            }
            let s = r.signature(u as u32);
            r.blocks[r.blk[u] as usize]
                .entry(s.clone())
                .or_default()
                .insert(u as u32);
            r.sigs[u] = Some(s);
        }
        r.rounds = ck.rounds;
        r.splits = ck.splits;
        r
    }

    fn checkpoint(&self) -> PartitionCheckpoint {
        PartitionCheckpoint {
            n1: self.view.n1,
            n2: self.view.n - self.view.n1,
            blocks: self.blk.clone(),
            worklist: self.dirty.clone(),
            rounds: self.rounds,
            splits: self.splits,
        }
    }

    /// The variant's signature of union state `u` with respect to the
    /// current partition. Per variant this encodes exactly the
    /// observations the pairwise `direction` predicate makes, with weak
    /// match sets pre-saturated (left-saturation makes that equivalent):
    ///
    /// * `StrongBarbed` — strong barbs; τ-successor blocks.
    /// * `WeakBarbed` — weak barbs; τ-closure blocks.
    /// * `StrongStep` — strong barbs; step-successor blocks (τ or any
    ///   output).
    /// * `WeakStep` — weak step barbs; step-closure blocks.
    /// * `StrongLabelled` — τ-successor blocks; per joint label, the
    ///   blocks reachable under that label, with a discarded channel
    ///   contributing `{own block}` to every input label on it (the
    ///   discard self-loop of the input-or-discard clause).
    /// * `WeakLabelled` — τ-closure blocks; per joint output label the
    ///   `⇒—l→⇒` blocks; per joint input label those plus the weak
    ///   discard continuations on its channel.
    fn signature(&self, u: u32) -> Sig {
        let u = u as usize;
        let (g, i, off) = self.view.part(u);
        let blk = &self.blk;
        let mut sig: Sig = Vec::new();
        match self.v {
            Variant::StrongBarbed => {
                push_names(
                    &mut sig,
                    KEY_BARBS,
                    g.strong_barbs(i).iter(),
                    &self.view.chan_ids,
                );
                push_blocks(&mut sig, KEY_MOVES, g.tau_succs(i).map(|t| blk[off + t]));
            }
            Variant::WeakBarbed => {
                push_names(
                    &mut sig,
                    KEY_BARBS,
                    g.weak_barbs(i).iter(),
                    &self.view.chan_ids,
                );
                push_blocks(
                    &mut sig,
                    KEY_MOVES,
                    g.tau_closure(i).iter().map(|&t| blk[off + t]),
                );
            }
            Variant::StrongStep => {
                push_names(
                    &mut sig,
                    KEY_BARBS,
                    g.strong_barbs(i).iter(),
                    &self.view.chan_ids,
                );
                push_blocks(
                    &mut sig,
                    KEY_MOVES,
                    g.step_edges(i).map(|(_, t)| blk[off + t]),
                );
            }
            Variant::WeakStep => {
                push_names(
                    &mut sig,
                    KEY_BARBS,
                    g.weak_step_barbs(i).iter(),
                    &self.view.chan_ids,
                );
                push_blocks(
                    &mut sig,
                    KEY_MOVES,
                    g.step_closure(i).iter().map(|&t| blk[off + t]),
                );
            }
            Variant::StrongLabelled => {
                let lmap = if off == 0 {
                    &self.view.lmap1
                } else {
                    &self.view.lmap2
                };
                let mut comps: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
                for (lid, t) in g.edge_ids(i) {
                    let key = match g.label(lid) {
                        Action::Tau => KEY_MOVES,
                        _ => KEY_LABEL + lmap[lid as usize],
                    };
                    comps.entry(key).or_default().insert(blk[off + t]);
                }
                // A discarded channel answers every input label on it
                // with the discard self-loop: residual `u` itself.
                for a in self.view.inputs_by_chan.keys() {
                    if g.state_discards(i, *a) {
                        for &jl in &self.view.inputs_by_chan[a] {
                            comps.entry(KEY_LABEL + jl).or_default().insert(blk[u]);
                        }
                    }
                }
                sig.extend(
                    comps
                        .into_iter()
                        .map(|(k, s)| (k, s.into_iter().collect::<Vec<u32>>())),
                );
            }
            Variant::WeakLabelled => {
                push_blocks(
                    &mut sig,
                    KEY_MOVES,
                    g.tau_closure(i).iter().map(|&t| blk[off + t]),
                );
                for (jl, act) in self.view.labels.iter().enumerate() {
                    if matches!(act, Action::Tau) {
                        continue;
                    }
                    let mut set: BTreeSet<u32> =
                        g.weak_label(i, act).iter().map(|&t| blk[off + t]).collect();
                    if act.is_input() {
                        let a = act.subject().expect("input labels have a subject");
                        set.extend(g.weak_discard(i, a).iter().map(|&t| blk[off + t]));
                    }
                    if !set.is_empty() {
                        sig.push((KEY_LABEL + jl as u32, set.into_iter().collect()));
                    }
                }
            }
        }
        sig
    }

    /// One refinement round: recompute the dirty signatures, rebucket
    /// the changed states, split every touched block.
    ///
    /// A signature is a pure function of the block array and the graph
    /// caches — neither changes before [`Refiner::split`] runs — so the
    /// signatures of the whole drained queue can be computed up front
    /// (and, above [`PAR_SIG_MIN`], across crossbeam workers) and then
    /// applied in drain order. The rebucketing and the splits stay
    /// sequential; the partition after every round is bit-identical at
    /// every thread count.
    fn round(&mut self) {
        let drained: Vec<u32> = self.dirty.drain(..).collect();
        for &u in &drained {
            self.in_dirty[u as usize] = false;
        }
        let sigs = self.signatures_of(&drained);
        let mut affected: BTreeSet<u32> = BTreeSet::new();
        for (&u, s) in drained.iter().zip(sigs) {
            if self.sigs[u as usize].as_ref() == Some(&s) {
                continue;
            }
            let b = self.blk[u as usize] as usize;
            if let Some(old) = self.sigs[u as usize].take() {
                if let Some(members) = self.blocks[b].get_mut(&old) {
                    members.remove(&u);
                    if members.is_empty() {
                        self.blocks[b].remove(&old);
                    }
                }
            }
            self.blocks[b].entry(s.clone()).or_default().insert(u);
            self.sigs[u as usize] = Some(s);
            affected.insert(b as u32);
        }
        for b in affected {
            self.split(b as usize);
        }
        self.rounds += 1;
    }

    /// The signatures of `dirty`, in order. Sequential below
    /// [`PAR_SIG_MIN`] or at one thread; otherwise chunked across a
    /// crossbeam scope. The workers only read the partition and the
    /// graph caches, so a contained chunk panic (chaos injection) simply
    /// falls back to the sequential recomputation of the same values.
    fn signatures_of(&self, dirty: &[u32]) -> Vec<Sig> {
        let sequential = || dirty.iter().map(|&u| self.signature(u)).collect();
        if self.threads <= 1 || dirty.len() < PAR_SIG_MIN {
            return sequential();
        }
        let chunk = dirty.len().div_ceil(self.threads);
        let slots: Vec<Mutex<Vec<Sig>>> = dirty
            .chunks(chunk)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let joined = crossbeam::scope(|s| {
            for (part, slot) in dirty.chunks(chunk).zip(&slots) {
                s.spawn(move |_| {
                    // Chaos injection point: may panic under an
                    // installed `BPI_CHAOS` plan; the scope contains
                    // the unwind.
                    bpi_semantics::chaos::worker_tick("equiv.partition.chunk");
                    *slot.lock() = part.iter().map(|&u| self.signature(u)).collect();
                });
            }
        });
        if joined.is_err() {
            return sequential();
        }
        let mut out = Vec::with_capacity(dirty.len());
        for slot in slots {
            out.extend(slot.into_inner());
        }
        out
    }

    /// Splits block `b` if its members' signatures diverged: the
    /// largest bucket keeps the id (ties broken toward the first in
    /// signature order — fully deterministic), every other bucket
    /// becomes a fresh block, and only the moved states' dependents are
    /// re-enqueued: the smaller-half discipline.
    fn split(&mut self, b: usize) {
        if self.blocks[b].len() <= 1 {
            return;
        }
        let keeper: Sig = {
            let mut best: Option<(&Sig, usize)> = None;
            for (sig, members) in &self.blocks[b] {
                if best.is_none_or(|(_, sz)| members.len() > sz) {
                    best = Some((sig, members.len()));
                }
            }
            best.expect("split of a non-empty block").0.clone()
        };
        let buckets = std::mem::take(&mut self.blocks[b]);
        let mut moved: Vec<u32> = Vec::new();
        for (sig, members) in buckets {
            if sig == keeper {
                self.blocks[b].insert(sig, members);
            } else {
                let nb = self.blocks.len() as u32;
                for &m in &members {
                    self.blk[m as usize] = nb;
                    moved.push(m);
                }
                self.blocks.push(BTreeMap::from([(sig, members)]));
                self.splits += 1;
            }
        }
        for m in moved {
            self.mark_deps(m);
        }
    }

    /// Re-enqueues every state whose signature can reference `m`'s
    /// block: `m`'s dependents in its own graph (predecessors for the
    /// strong variants, inverse reachability for the weak ones, plus
    /// the diagonal — `m` itself, whose discard components name its own
    /// block).
    fn mark_deps(&mut self, m: u32) {
        let m = m as usize;
        let (deps, off, local) = if m < self.view.n1 {
            (&self.deps1, 0, m)
        } else {
            (
                self.deps2
                    .as_ref()
                    .expect("offset state implies a second part"),
                self.view.n1,
                m - self.view.n1,
            )
        };
        for &d in &deps[local] {
            let du = d + off;
            if !self.in_dirty[du] {
                self.in_dirty[du] = true;
                self.dirty.push_back(du as u32);
            }
        }
    }

    /// Runs rounds to quiescence under the budget/fuel polls.
    fn run(
        &mut self,
        budget: &Budget,
        cfg: &CheckpointCfg<PartitionCheckpoint>,
    ) -> Result<(), Interrupted<PartitionCheckpoint>> {
        while !self.dirty.is_empty() {
            if let Err(e) = poll(cfg, budget) {
                record_snapshot("interrupt");
                return Err(Interrupted {
                    error: e,
                    checkpoint: self.checkpoint(),
                });
            }
            self.round();
            cfg.maybe_snapshot(self.rounds as usize, || self.checkpoint());
        }
        Ok(())
    }

    /// Canonicalizes block numbering by first occurrence and records
    /// the deterministic counters.
    fn finish(&self) -> Partition {
        let n = self.view.n;
        let mut renumber: Vec<u32> = vec![u32::MAX; self.blocks.len()];
        let mut blocks = Vec::with_capacity(n);
        let mut next = 0u32;
        for u in 0..n {
            let b = self.blk[u] as usize;
            if renumber[b] == u32::MAX {
                renumber[b] = next;
                next += 1;
            }
            blocks.push(renumber[b]);
        }
        let part = Partition {
            n1: self.view.n1,
            n2: self.view.n - self.view.n1,
            blocks,
            num_blocks: next as usize,
        };
        record_partition(&part, self.rounds, self.splits);
        part
    }
}

/// Round-boundary interruption poll: chaos pressure (armed supervisors
/// only), the budget's deadline/cancellation, then the fuel countdown —
/// the same order as the budgeted pairwise engine.
fn poll(
    cfg: &CheckpointCfg<PartitionCheckpoint>,
    budget: &Budget,
) -> Result<(), bpi_semantics::budget::EngineError> {
    bpi_semantics::chaos::pressure("equiv.partition.pressure")?;
    budget.check(0)?;
    cfg.burn_fuel()
}

/// The coarsest `v`-stable partition of the disjoint union of `g1` and
/// `g2`. Callers wanting the pairwise relation go through
/// [`partition_to_relation`] (or just [`crate::bisim::refine_auto`],
/// which dispatches here on partition-safe products).
pub fn refine_partition(v: Variant, g1: &Graph, g2: &Graph) -> Partition {
    refine_partition_parallel(v, g1, g2, 1)
}

/// [`refine_partition`] with the per-round signature recomputation
/// spread across `threads` crossbeam workers (ROADMAP's work-parallel
/// round over the dirty queue). Opt-in like [`crate::refine_parallel`]
/// — the dispatch never picks it — and bit-identical to the sequential
/// engine at every thread count: signatures are pure functions of the
/// round's partition and are applied in drain order either way.
pub fn refine_partition_parallel(v: Variant, g1: &Graph, g2: &Graph, threads: usize) -> Partition {
    let budget = Budget::unlimited();
    let cfg = CheckpointCfg::default();
    let mut r = Refiner::new(v, g1, Some(g2));
    r.threads = threads.max(1);
    r.run(&budget, &cfg)
        .expect("inert config and unlimited budget cannot interrupt");
    r.finish()
}

/// The coarsest `v`-stable self-partition of one graph — the input to
/// [`quotient`].
pub fn refine_partition_self(v: Variant, g: &Graph) -> Partition {
    refine_partition_self_threads(v, g, 1)
}

/// [`refine_partition_self`] with round-parallel signature
/// recomputation — the self-partition flavour of
/// [`refine_partition_parallel`], used by [`quotient_threads`].
pub fn refine_partition_self_threads(v: Variant, g: &Graph, threads: usize) -> Partition {
    let budget = Budget::unlimited();
    let cfg = CheckpointCfg::default();
    let mut r = Refiner::new(v, g, None);
    r.threads = threads.max(1);
    r.run(&budget, &cfg)
        .expect("inert config and unlimited budget cannot interrupt");
    r.finish()
}

/// [`refine_partition`] under a [`Budget`] and a [`CheckpointCfg`]:
/// identical result, but any interruption — deadline, cancellation,
/// chaos pressure, fuel exhaustion — returns [`Interrupted`] carrying a
/// [`PartitionCheckpoint`] taken at a round boundary.
pub fn refine_partition_budgeted(
    v: Variant,
    g1: &Graph,
    g2: &Graph,
    budget: &Budget,
    cfg: &CheckpointCfg<PartitionCheckpoint>,
) -> Result<Partition, Interrupted<PartitionCheckpoint>> {
    let mut r = Refiner::new(v, g1, Some(g2));
    r.run(budget, cfg)?;
    Ok(r.finish())
}

/// Continues [`refine_partition_budgeted`] from a snapshot. The final
/// partition, round count and split count are bit-for-bit identical to
/// an uninterrupted run (`partition_oracle.rs` interrupts at every fuel
/// boundary and checks exactly that).
pub fn refine_partition_resume(
    v: Variant,
    g1: &Graph,
    g2: &Graph,
    budget: &Budget,
    cfg: &CheckpointCfg<PartitionCheckpoint>,
    ckpt: PartitionCheckpoint,
) -> Result<Partition, Interrupted<PartitionCheckpoint>> {
    record_resume("partition");
    let mut r = Refiner::restore(v, g1, Some(g2), ckpt);
    r.run(budget, cfg)?;
    Ok(r.finish())
}

/// Minimization: collapses each block of the `v`-self-partition to one
/// CSR state (the least member represents its block; the root's block
/// stays state 0). Edges are re-targeted through the block map and
/// deduplicated. The result is `v`-bisimilar to `g` with
/// `partition.num_blocks` states — the minimize-then-compose building
/// block.
///
/// On a graph that is not partition-safe (mixed input arities, where
/// the pairwise relation is not even transitive) no quotient is
/// meaningful, so the graph is rebuilt unchanged under the identity
/// partition.
pub fn quotient(v: Variant, g: &Graph) -> Graph {
    quotient_threads(v, g, 1)
}

/// [`quotient`] with round-parallel signature recomputation in the
/// underlying self-partition — what the compositional engine calls with
/// the checker's thread count.
pub fn quotient_threads(v: Variant, g: &Graph, threads: usize) -> Graph {
    let part = if partition_safe_self(g) {
        refine_partition_self_threads(v, g, threads)
    } else {
        Partition {
            n1: g.len(),
            n2: 0,
            blocks: (0..g.len() as u32).collect(),
            num_blocks: g.len(),
        }
    };
    let mut reps: Vec<usize> = vec![usize::MAX; part.num_blocks];
    for u in 0..g.len() {
        let b = part.blocks[u] as usize;
        if reps[b] == usize::MAX {
            reps[b] = u;
        }
    }
    let states = reps.iter().map(|&r| g.states[r].clone()).collect();
    let edges = reps
        .iter()
        .map(|&r| {
            let mut seen: BTreeSet<(Action, usize)> = BTreeSet::new();
            let mut es: Vec<(Action, usize)> = Vec::new();
            for (act, t) in &g.edges[r] {
                let nt = part.blocks[*t] as usize;
                if seen.insert((act.clone(), nt)) {
                    es.push((act.clone(), nt));
                }
            }
            es
        })
        .collect();
    let discarding = reps.iter().map(|&r| g.discarding[r].clone()).collect();
    Graph::from_parts_record(states, edges, discarding, g.pool.clone(), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::refine;
    use crate::graph::{shared_pool, Opts};
    use bpi_core::builder::{inp, names, nil, out, par, sum, tau};
    use bpi_core::syntax::{Defs, P};

    const ALL: [Variant; 6] = [
        Variant::StrongBarbed,
        Variant::WeakBarbed,
        Variant::StrongStep,
        Variant::WeakStep,
        Variant::StrongLabelled,
        Variant::WeakLabelled,
    ];

    fn build_pair(p: &P, q: &P) -> (Graph, Graph) {
        let defs = Defs::new();
        let opts = Opts::default();
        let pool = shared_pool(p, q, opts.fresh_inputs);
        let g1 = Graph::build(p, &defs, &pool, opts).expect("finite test term");
        let g2 = Graph::build(q, &defs, &pool, opts).expect("finite test term");
        (g1, g2)
    }

    fn assert_matches_pairwise(p: &P, q: &P) {
        let (g1, g2) = build_pair(p, q);
        assert!(partition_safe(&g1, &g2), "corpus term must be safe");
        for v in ALL {
            let part = refine_partition(v, &g1, &g2);
            let got = partition_to_relation(&part);
            let want = refine(v, &g1, &g2);
            assert_eq!(got.rel, want.rel, "{v:?} diverged on {p} vs {q}");
        }
    }

    #[test]
    fn partition_matches_pairwise_on_paper_witnesses() {
        let [a, b] = names(["a", "b"]);
        let cases: Vec<(P, P)> = vec![
            (tau(nil()), nil()),
            (out(a, [b], nil()), out(a, [b], nil())),
            (
                sum(out(a, [b], nil()), tau(nil())),
                tau(sum(out(a, [b], nil()), tau(nil()))),
            ),
            (
                par(inp(a, [b], nil()), out(a, [b], nil())),
                par(out(a, [b], nil()), inp(a, [b], nil())),
            ),
            (inp(a, [b], out(b, [a], nil())), nil()),
        ];
        for (p, q) in &cases {
            assert_matches_pairwise(p, q);
            assert_matches_pairwise(q, p);
            assert_matches_pairwise(p, p);
        }
    }

    #[test]
    fn mixed_input_arities_are_flagged_unsafe() {
        let [a, b] = names(["a", "b"]);
        let p = inp(a, [b], nil());
        let q = inp(a, [b, b], nil());
        let (g1, g2) = build_pair(&p, &q);
        assert!(!partition_safe(&g1, &g2));
        // Uniform arities stay safe.
        let (h1, h2) = build_pair(&p, &p);
        assert!(partition_safe(&h1, &h2));
    }

    #[test]
    fn quotient_collapses_bisimilar_states_and_stays_bisimilar() {
        let [a, b] = names(["a", "b"]);
        // `a<b>` and `a<b> + a<b>` are strongly bisimilar but
        // syntactically distinct, so the builder keeps them as separate
        // states and the quotient must merge them. (Syntactically equal
        // subterms are already shared by the builder.)
        let p = sum(
            tau(out(a, [b], nil())),
            tau(sum(out(a, [b], nil()), out(a, [b], nil()))),
        );
        let defs = Defs::new();
        let opts = Opts::default();
        let pool = shared_pool(&p, &p, opts.fresh_inputs);
        let g = Graph::build(&p, &defs, &pool, opts).expect("finite test term");
        let q = quotient(Variant::StrongLabelled, &g);
        assert!(q.len() < g.len(), "duplicate τ-branches must collapse");
        for v in ALL {
            let rel = refine(v, &g, &q);
            assert!(rel.holds(0, 0), "{v:?}: quotient not bisimilar to original");
        }
        // The quotient is already minimal: quotienting again is a no-op.
        let q2 = quotient(Variant::StrongLabelled, &q);
        assert_eq!(q2.len(), q.len());
    }

    #[test]
    fn self_partition_numbering_is_canonical() {
        let [a] = names(["a"]);
        let p = tau(tau(out(a, [a], nil())));
        let defs = Defs::new();
        let opts = Opts::default();
        let pool = shared_pool(&p, &p, opts.fresh_inputs);
        let g = Graph::build(&p, &defs, &pool, opts).expect("finite test term");
        for v in ALL {
            let part = refine_partition_self(v, &g);
            assert_eq!(part.blocks.len(), g.len());
            assert_eq!(part.n2, 0);
            // Canonical numbering: root in block 0, ids dense.
            assert_eq!(part.blocks[0], 0);
            assert!(part.num_blocks <= g.len());
        }
    }
}
