//! Distinguishing evidence for failed equivalence checks.
//!
//! When `p ≁ q`, a bare `false` is a poor answer for a tool user. This
//! module extracts a **distinguishing experiment**: a tree of moves that
//! one process can perform and the other cannot match (staying related),
//! in the spirit of the Hennessy–Milner characterisation of
//! bisimilarity. For the broadcast calculus the relevant observations
//! are:
//!
//! * `⟨α⟩` — "can do α (τ / output / input-or-discard) and then …";
//! * `↓a` — "has a strong barb on a" (for the barbed variants);
//! * `↓ₐ^φ` / step moves for the step variants.
//!
//! The extraction replays the pair-refinement fixpoint: a pair died
//! because some move of one side had no matching move with surviving
//! residuals; recursing on the best witness yields a finite experiment,
//! whose depth is bounded by the number of refinement rounds.

use crate::bisim::{refine_auto, Variant};
use crate::graph::{shared_pool, Graph, Opts};
use bpi_core::action::Action;
use bpi_core::name::Name;
use bpi_core::syntax::{Defs, P};
use bpi_semantics::budget::Budget;
use std::fmt;

/// A distinguishing experiment: evidence that the *left* process can do
/// something the right cannot match (or vice versa — see [`Side`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Experiment {
    /// The distinguishing observation is a barb the other side lacks.
    Barb { chan: Name, weak: bool },
    /// A move with the given label such that *every* answer of the other
    /// side leads to residuals distinguished by the nested experiment.
    Move {
        label: Action,
        /// For each answer the opponent has (empty when it has none): a
        /// distinguishing experiment for the residual pair, and whether
        /// the *mover's residual* is the side satisfying it.
        answers: Vec<(bool, Experiment)>,
    },
}

/// Which side performs the top-level distinguishing move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// A rooted distinguishing result.
#[derive(Clone, Debug)]
pub struct Distinction {
    pub side: Side,
    pub experiment: Experiment,
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Experiment::Barb { chan, weak } => {
                write!(f, "{}↓{chan}", if *weak { "⇓" } else { "" })
            }
            Experiment::Move { label, answers } => {
                write!(f, "⟨{label}⟩")?;
                let one = |f: &mut fmt::Formatter<'_>, (mine, e): &(bool, Experiment)| {
                    if *mine {
                        write!(f, "{e}")
                    } else {
                        write!(f, "¬({e})")
                    }
                };
                match answers.len() {
                    0 => write!(f, "(no answer)"),
                    1 => one(f, &answers[0]),
                    _ => {
                        write!(f, "(")?;
                        for (i, a) in answers.iter().enumerate() {
                            if i > 0 {
                                write!(f, " ∧ ")?;
                            }
                            one(f, a)?;
                        }
                        write!(f, ")")
                    }
                }
            }
        }
    }
}

impl fmt::Display for Distinction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = match self.side {
            Side::Left => "left",
            Side::Right => "right",
        };
        write!(f, "[{side} satisfies] {}", self.experiment)
    }
}

/// Explains why `p ≁ q` under the given strong variant, or `None` when
/// they are in fact bisimilar. Weak variants are currently explained
/// through their strong counterparts' graphs (the experiment is still
/// valid evidence, read weakly).
///
/// Resource exhaustion while building the graphs also yields `None` (no
/// distinction could be exhibited); use [`try_explain`] to tell the two
/// apart.
pub fn explain(v: Variant, p: &P, q: &P, defs: &Defs, opts: Opts) -> Option<Distinction> {
    try_explain(v, p, q, defs, opts).unwrap_or(None)
}

/// [`explain`] with typed exhaustion: `Err` when either graph exceeds
/// `opts.max_states` before the distinction search can run.
pub fn try_explain(
    v: Variant,
    p: &P,
    q: &P,
    defs: &Defs,
    opts: Opts,
) -> Result<Option<Distinction>, bpi_semantics::EngineError> {
    let pool = shared_pool(p, q, opts.fresh_inputs);
    let budget = Budget::unlimited();
    let g1 = Graph::build_cached(p, defs, &pool, opts, &budget)?;
    let g2 = Graph::build_cached(q, defs, &pool, opts, &budget)?;
    let rel = refine_auto(v, &g1, &g2, 1);
    Ok(explain_fixpoint(v, &g1, &g2, &rel.rel))
}

/// Extracts a distinction from an **already-computed** fixpoint — the
/// shape [`crate::bisim::Checker::run_with_checkpoint`] and the
/// supervised checker hand back — without rebuilding graphs or
/// re-refining, so a resumed or supervised run can explain its `Fails`
/// verdict for free. `None` when the root pair survived refinement.
pub fn explain_fixpoint(
    v: Variant,
    g1: &Graph,
    g2: &Graph,
    rel: &[Vec<bool>],
) -> Option<Distinction> {
    if rel[0][0] {
        return None;
    }
    let initial_budget = g1.len() * g2.len() + 2;
    let mut depth_budget = initial_budget;
    let d = explain_pair(v, g1, 0, g2, 0, rel, &mut depth_budget);
    // The experiment is a function of the fixpoint relation, which is
    // engine- and thread-independent — so the count and search depth
    // replay deterministically.
    bpi_obs::counter("equiv.distinguish.formulas", bpi_obs::Det::Deterministic).inc();
    bpi_obs::counter("equiv.distinguish.depth", bpi_obs::Det::Deterministic)
        .add((initial_budget - depth_budget) as u64);
    bpi_obs::emit("equiv.distinguish", "explained", || {
        vec![
            ("depth", bpi_obs::Value::from(initial_budget - depth_budget)),
            ("experiment", bpi_obs::Value::from(d.to_string())),
        ]
    });
    Some(d)
}

fn related(rel: &[Vec<bool>], i: usize, j: usize) -> bool {
    rel[i][j]
}

fn explain_pair(
    v: Variant,
    g1: &Graph,
    i: usize,
    g2: &Graph,
    j: usize,
    rel: &[Vec<bool>],
    budget: &mut usize,
) -> Distinction {
    if *budget > 0 {
        *budget -= 1;
    }
    // Try the left side's moves first, then the right's.
    if let Some(exp) = dir_explain(v, g1, i, g2, j, rel, false, budget) {
        return Distinction {
            side: Side::Left,
            experiment: exp,
        };
    }
    if let Some(exp) = dir_explain(v, g2, j, g1, i, rel, true, budget) {
        return Distinction {
            side: Side::Right,
            experiment: exp,
        };
    }
    // The pair died in the fixpoint, so one direction must fail; if the
    // budget ran dry, fall back to a generic barb report.
    Distinction {
        side: Side::Left,
        experiment: Experiment::Barb {
            chan: Name::intern_raw("#unknown"),
            weak: false,
        },
    }
}

/// If `(ga, i)` has an unmatched observation against `(gb, j)`, return
/// the experiment witnessing it.
#[allow(clippy::too_many_arguments)]
fn dir_explain(
    v: Variant,
    ga: &Graph,
    i: usize,
    gb: &Graph,
    j: usize,
    rel: &[Vec<bool>],
    transposed: bool,
    budget: &mut usize,
) -> Option<Experiment> {
    let rl = |x: usize, y: usize| {
        if transposed {
            related(rel, y, x)
        } else {
            related(rel, x, y)
        }
    };
    // Barb mismatch (barbed/step variants).
    if matches!(
        v,
        Variant::StrongBarbed | Variant::WeakBarbed | Variant::StrongStep | Variant::WeakStep
    ) {
        let (ba, bb) = match v {
            Variant::StrongBarbed | Variant::StrongStep => (ga.strong_barbs(i), gb.strong_barbs(j)),
            Variant::WeakBarbed => (ga.weak_barbs(i), gb.weak_barbs(j)),
            _ => (ga.weak_step_barbs(i), gb.weak_step_barbs(j)),
        };
        for chan in &ba {
            if !bb.contains(chan) {
                return Some(Experiment::Barb {
                    chan,
                    weak: matches!(v, Variant::WeakBarbed | Variant::WeakStep),
                });
            }
        }
    }
    // Move mismatch.
    for (lid, i2) in ga.edge_ids(i) {
        let act = ga.label(lid);
        let considered = match v {
            Variant::StrongBarbed | Variant::WeakBarbed => matches!(act, Action::Tau),
            Variant::StrongStep | Variant::WeakStep => act.is_step_move(),
            _ => true,
        };
        if !considered {
            continue;
        }
        // The opponent's candidate answers for this label.
        let answers: Vec<usize> = opponent_answers(v, gb, j, act);
        if answers.iter().any(|&j2| rl(i2, j2)) {
            continue; // matched
        }
        // Unmatched: recurse into each answer to explain why its
        // residual pair is distinguished.
        if *budget == 0 {
            return Some(Experiment::Move {
                label: act.clone(),
                answers: Vec::new(),
            });
        }
        let sub: Vec<(bool, Experiment)> = answers
            .iter()
            .map(|&j2| {
                let d = if transposed {
                    explain_pair(v, gb, j2, ga, i2, rel, budget)
                } else {
                    explain_pair(v, ga, i2, gb, j2, rel, budget)
                };
                // Whether the mover's residual is the satisfying side:
                // in the non-transposed call the residual is the first
                // argument (Side::Left); transposed, the second.
                let mine = (d.side == Side::Left) != transposed;
                (mine, d.experiment)
            })
            .collect();
        return Some(Experiment::Move {
            label: act.clone(),
            answers: sub,
        });
    }
    None
}

/// The opponent's possible responses to a move with the given label.
fn opponent_answers(v: Variant, gb: &Graph, j: usize, act: &Action) -> Vec<usize> {
    match v {
        Variant::StrongBarbed => gb.tau_succs(j).collect(),
        Variant::WeakBarbed => gb.tau_closure(j).iter().copied().collect(),
        Variant::StrongStep => gb.step_edges(j).map(|(_, k)| k).collect(),
        Variant::WeakStep => gb.step_closure(j).iter().copied().collect(),
        Variant::StrongLabelled => {
            // Same-label answers compare interned ids after translating
            // the mover's label into the opponent's id space.
            let same = |gb: &Graph| -> Vec<usize> {
                match gb.csr().label_id(act) {
                    Some(bl) => gb
                        .edge_ids(j)
                        .filter(|&(l, _)| l == bl)
                        .map(|(_, k)| k)
                        .collect(),
                    None => Vec::new(),
                }
            };
            match act {
                Action::Tau => gb.tau_succs(j).collect(),
                Action::Output { .. } => same(gb),
                Action::Input { chan, .. } => {
                    let mut out = same(gb);
                    if gb.state_discards(j, *chan) {
                        out.push(j);
                    }
                    out
                }
                Action::Discard { .. } => vec![j],
            }
        }
        Variant::WeakLabelled => match act {
            Action::Tau => gb.tau_closure(j).iter().copied().collect(),
            Action::Output { .. } => gb.weak_label(j, act).iter().copied().collect(),
            Action::Input { chan, .. } => {
                let mut s: std::collections::BTreeSet<usize> =
                    gb.weak_label(j, act).iter().copied().collect();
                s.extend(gb.weak_discard(j, *chan).iter().copied());
                s.into_iter().collect()
            }
            Action::Discard { .. } => vec![j],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::Checker;
    use bpi_core::builder::*;

    fn d() -> Defs {
        Defs::new()
    }

    #[test]
    fn no_distinction_for_bisimilar_pairs() {
        let defs = d();
        let [a, b] = names(["a", "b"]);
        let p = out(a, [b], nil());
        let q = par(p.clone(), nil());
        assert!(explain(Variant::StrongLabelled, &p, &q, &defs, Opts::default()).is_none());
    }

    #[test]
    fn explains_differing_outputs() {
        let defs = d();
        let [a, b, c] = names(["a", "b", "c"]);
        let p = out_(a, [b]);
        let q = out_(a, [c]);
        let dist = explain(Variant::StrongLabelled, &p, &q, &defs, Opts::default()).unwrap();
        // The top move is an a-output with no answer.
        match &dist.experiment {
            Experiment::Move { label, answers } => {
                assert_eq!(label.subject(), Some(a));
                assert!(answers.is_empty(), "no same-label answer exists");
            }
            other => panic!("expected a move, got {other:?}"),
        }
    }

    #[test]
    fn explains_deep_difference() {
        // ā.(b̄+c̄) vs ā.b̄+ā.c̄: the distinction is one level down.
        let defs = d();
        let [a, b, c] = names(["a", "b", "c"]);
        let p = out(a, [], sum(out_(b, []), out_(c, [])));
        let q = sum(out(a, [], out_(b, [])), out(a, [], out_(c, [])));
        let dist = explain(Variant::StrongLabelled, &p, &q, &defs, Opts::default()).unwrap();
        let text = dist.to_string();
        assert!(text.contains("⟨a<>⟩"), "experiment: {text}");
        // Both answers of the opponent must be refuted.
        match &dist.experiment {
            Experiment::Move { answers, .. } => assert_eq!(answers.len(), 2),
            other => panic!("expected a move, got {other:?}"),
        }
    }

    #[test]
    fn explains_barb_mismatch() {
        let defs = d();
        let [a, b] = names(["a", "b"]);
        let p = out_(a, []);
        let q = out_(b, []);
        let dist = explain(Variant::StrongBarbed, &p, &q, &defs, Opts::default()).unwrap();
        assert!(matches!(dist.experiment, Experiment::Barb { .. }));
    }

    #[test]
    fn explanation_is_consistent_with_checker() {
        // explain() returns Some iff the checker says ≁, on a mixed bag.
        let defs = d();
        let checker = Checker::new(&defs);
        let [a, b, x] = names(["a", "b", "x"]);
        let pairs = vec![
            (inp_(a, [x]), nil()),
            (inp(a, [x], out_(x, [])), nil()),
            (tau(out_(a, [])), out_(a, [])),
            (sum(out_(a, []), out_(b, [])), sum(out_(b, []), out_(a, []))),
        ];
        for (p, q) in pairs {
            for v in [
                Variant::StrongBarbed,
                Variant::StrongStep,
                Variant::StrongLabelled,
                Variant::WeakLabelled,
            ] {
                let bis = checker.bisimilar(v, &p, &q);
                let exp = explain(v, &p, &q, &defs, Opts::default());
                assert_eq!(bis, exp.is_none(), "{v:?} on {p} vs {q}: {exp:?}");
            }
        }
    }
}
