//! State-space explorer: parse a bπ process from the command line and
//! print its reachable step-move graph, deadlocks and barbs.
//!
//! ```sh
//! cargo run --example state_explorer -- 'a<v> | a(x).x<> | b(y).0'
//! cargo run --example state_explorer -- 'new a. (a<> | a().c<>)'
//! ```

use bpi::core::parse_process;
use bpi::core::syntax::Defs;
use bpi::semantics::{explore, explore_parallel, ExploreOpts};

fn main() {
    let src = std::env::args().skip(1).collect::<Vec<_>>().join(" ");
    let src = if src.is_empty() {
        "a<v> | a(x).x<> | a(y).y<y>".to_string()
    } else {
        src
    };
    let p = match parse_process(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let defs = Defs::new();
    println!("process: {p}\n");

    let opts = ExploreOpts::default();
    let start = std::time::Instant::now();
    let g = explore(&p, &defs, opts);
    let seq_time = start.elapsed();

    for (i, state) in g.states.iter().enumerate() {
        println!("[{i}] {state}");
        for (act, j) in &g.edges[i] {
            println!("      —{act}→ [{j}]");
        }
    }
    println!();
    println!(
        "{} states, {} transitions{} in {seq_time:.2?}",
        g.len(),
        g.edge_count(),
        if g.truncated { " (truncated)" } else { "" }
    );
    println!("deadlocked states : {:?}", g.deadlocks());
    println!("output subjects   : {:?}", g.output_subjects());

    // For larger graphs, show the parallel explorer's agreement.
    if g.len() > 50 {
        let start = std::time::Instant::now();
        let gp = explore_parallel(&p, &defs, opts, 4);
        println!(
            "parallel exploration: {} states in {:.2?}",
            gp.len(),
            start.elapsed()
        );
        assert_eq!(g.len(), gp.len());
    }
}
