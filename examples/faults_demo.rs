//! Fault injection and graceful degradation, end to end.
//!
//! ```sh
//! cargo run --example faults_demo
//! ```
//!
//! Runs the resilient distributed cycle detector of Example 1 over a
//! lossy broadcast medium at increasing loss rates, shows the replayable
//! fault log, then demonstrates the budgeted equivalence engines
//! answering `Inconclusive` instead of panicking on an infinite-state
//! system.

use bpi::core::builder::*;
use bpi::core::syntax::Defs;
use bpi::encodings::cycle::{detect_under_faults, Graph};
use bpi::equiv::{Checker, Opts, Variant, Verdict};
use bpi::semantics::{Budget, FaultPlan};

fn main() {
    // 1. A 3-cycle, detected through a medium that drops broadcasts.
    let g = Graph::new(&[("a", "b"), ("b", "c"), ("c", "a")]);
    for loss in [0.0, 0.5, 0.9] {
        let plan = FaultPlan::new(42).with_default_loss(loss).unwrap();
        let (found, log) = detect_under_faults(&g, &plan, 4_000);
        println!(
            "loss {loss:>3}: cycle detected = {found}  ({} broadcasts dropped)",
            log.losses()
        );
    }

    // 2. Determinism: the same seed replays the same faults.
    let plan = FaultPlan::new(7).with_default_loss(0.5).unwrap();
    let (_, log1) = detect_under_faults(&g, &plan, 500);
    let (_, log2) = detect_under_faults(&g, &plan, 500);
    println!("seed 7 replays identically: {}", log1.len() == log2.len());

    // 3. Graceful degradation: Pump(b) = τ.(b̄ ‖ Pump⟨b⟩) spawns a new
    //    component every round — its state graph is unbounded, so a
    //    budgeted checker reports Inconclusive (a typed verdict) rather
    //    than running away or panicking.
    let [b] = names(["b"]);
    let yid = bpi::core::syntax::Ident::new("Pump");
    let pump = rec(yid, [b], tau(par(out_(b, []), var(yid, [b]))), [b]);
    let defs = Defs::new();
    let checker = Checker::with_opts(&defs, Opts::default()).with_budget(Budget::states(64));
    match checker.check(Variant::StrongLabelled, &pump, &nil()) {
        Verdict::Inconclusive(reason) => println!("budgeted check: inconclusive ({reason})"),
        other => println!("budgeted check: {other:?}"),
    }
}
