//! The PR 4 observability layer, end to end.
//!
//! ```sh
//! cargo run --example observe
//! # or stream every event to stderr as JSON lines:
//! BPI_TRACE=json cargo run --example observe
//! ```
//!
//! Runs the Example 1 distributed cycle detector over a lossy broadcast
//! medium with an in-memory trace sink attached, then a budgeted
//! equivalence check, and shows what the instrumentation saw: the
//! structured fault events, the span timings, and the deterministic
//! counter delta of the whole run (the part that replays bit-identically
//! across engines and thread counts — see `DESIGN.md` §9).

use bpi::core::builder::*;
use bpi::core::syntax::Defs;
use bpi::encodings::cycle::{detect_under_faults, Graph};
use bpi::equiv::{Checker, Opts, Variant, Verdict};
use bpi::obs::{self, MemorySink};
use bpi::semantics::{Budget, FaultPlan};
use std::collections::BTreeMap;

fn main() {
    // Attach an in-memory sink. (`BPI_TRACE=json` would instead stream
    // JSON lines to stderr without touching the code; installing a sink
    // explicitly overrides it for this process.)
    let sink = MemorySink::new();
    obs::install_sink(sink.clone());
    let before = obs::snapshot();

    // 1. A fault-injected cycle detection: every dropped broadcast and
    //    refused delivery becomes a structured trace event, and the
    //    per-run fault totals land in deterministic counters (the fault
    //    log replays from its seed, so its totals are result-derived).
    let g = Graph::new(&[("a", "b"), ("b", "c"), ("c", "a")]);
    let plan = FaultPlan::new(42).with_default_loss(0.5).unwrap();
    let (found, log) = detect_under_faults(&g, &plan, 4_000);
    println!(
        "cycle detected under 50% loss: {found} ({} broadcasts dropped)",
        log.losses()
    );

    // 2. A budgeted equivalence check on an unbounded pump: the typed
    //    Inconclusive verdict is also an event, and the exhausted build
    //    shows up in `equiv.graph.exhausted` — not in `builds`.
    let [b] = names(["b"]);
    let pump_id = bpi::core::syntax::Ident::new("Pump");
    let pump = rec(pump_id, [b], tau(par(out_(b, []), var(pump_id, [b]))), [b]);
    let defs = Defs::new();
    let checker = Checker::with_opts(&defs, Opts::default()).with_budget(Budget::states(64));
    match checker.check(Variant::StrongLabelled, &pump, &nil()) {
        Verdict::Inconclusive(reason) => println!("budgeted check: inconclusive ({reason})"),
        other => println!("budgeted check: {other:?}"),
    }

    // 3. What the sink saw, grouped by event kind.
    let events = sink.take();
    obs::clear_sink();
    let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
    for e in &events {
        *by_kind
            .entry(format!("{}/{}", e.target, e.name))
            .or_default() += 1;
    }
    println!("\ntrace: {} events", events.len());
    for (kind, n) in &by_kind {
        println!("  {kind:<40} x{n}");
    }
    println!("\nfirst fault event as a JSON line:");
    if let Some(e) = events
        .iter()
        .find(|e| e.target == "semantics.faults" && e.name == "message_lost")
    {
        println!("  {}", e.to_json());
    }

    // 4. The deterministic counter delta of everything above. Re-running
    //    this example — or re-running it with `BPI_THREADS=4`, or on the
    //    naive instead of the worklist engine — produces exactly these
    //    numbers; the advisory side (memo hit rates, span timings, chunk
    //    schedules) is deliberately excluded.
    let delta = obs::snapshot().deterministic_delta(&before);
    println!("\ndeterministic counter delta:");
    for (name, value) in &delta {
        println!("  {name:<40} {value}");
    }

    // 5. Advisory span timings recorded as log2-bucketed histograms.
    let snap = obs::snapshot();
    println!("\nadvisory span histograms (count, total us):");
    for (name, h) in &snap.histograms {
        if name.ends_with(".us") && h.count > 0 {
            println!("  {name:<40} x{:<6} {}us", h.count, h.sum);
        }
    }
}
