//! Example 1 of the paper as a runnable scenario: distributed cycle
//! detection over broadcast.
//!
//! ```sh
//! cargo run --example cycle_detection            # built-in demo graphs
//! cargo run --example cycle_detection -- a:b b:c c:a
//! ```
//!
//! Each `src:dst` argument adds a directed edge; vertices are channels,
//! each edge gets a manager that broadcasts a private token and forwards
//! foreign ones, and a cycle is reported exactly when some manager hears
//! its own token come home.

use bpi::core::syntax::Defs;
use bpi::encodings::cycle::{
    detect_by_exploration, edge_managers_system, has_cycle_dfs, Graph, Verdict,
};
use bpi::semantics::{explore, ExploreOpts};

fn parse_args() -> Option<Graph> {
    let edges: Vec<(String, String)> = std::env::args()
        .skip(1)
        .map(|arg| {
            let (a, b) = arg
                .split_once(':')
                .unwrap_or_else(|| panic!("edge {arg:?} is not of the form src:dst"));
            (a.to_string(), b.to_string())
        })
        .collect();
    if edges.is_empty() {
        None
    } else {
        Some(Graph { edges })
    }
}

fn report(name: &str, g: &Graph) {
    let expect = has_cycle_dfs(g);
    let start = std::time::Instant::now();
    let (verdict, graph) = detect_by_exploration(g, 60_000);
    let elapsed = start.elapsed();
    println!(
        "{name:<12} edges={:<2} verdict={verdict:?} (DFS says cycle={expect}) in {elapsed:.2?}",
        g.edges.len(),
    );
    match verdict {
        Verdict::Cycle => assert!(expect, "false positive!"),
        Verdict::NoCycle => {
            assert!(!expect, "false negative!");
            println!("  full state space: {} states", graph.len());
        }
        Verdict::Unknown => println!("  (state budget exhausted)"),
    }
    if let Verdict::Cycle = verdict {
        // Re-explore within a modest budget to extract a witness trace.
        let (sys, defs, o) = edge_managers_system(g);
        let defs: Defs = defs;
        let small = explore(
            &sys,
            &defs,
            ExploreOpts {
                max_states: 20_000,
                normalize_extruded: true,
            },
        );
        if let Some(trace) = small.trace_to_output(o) {
            println!(
                "  witness trace ({} steps): {}",
                trace.len(),
                trace
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(" · ")
            );
        }
    }
}

fn main() {
    if let Some(g) = parse_args() {
        report("custom", &g);
        return;
    }
    report("chain", &Graph::new(&[("a", "b"), ("b", "c"), ("c", "d")]));
    report(
        "diamond",
        &Graph::new(&[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]),
    );
    report("two-cycle", &Graph::new(&[("a", "b"), ("b", "a")]));
    report(
        "triangle",
        &Graph::new(&[("a", "b"), ("b", "c"), ("c", "a")]),
    );
    report(
        "lollipop",
        &Graph::new(&[("a", "b"), ("b", "c"), ("c", "b")]),
    );
}
