//! Machine-readable experiment report: re-runs a representative slice
//! of the E-experiments and emits a JSON summary to stdout.
//!
//! ```sh
//! cargo run --example experiment_report > report.json
//! ```
//!
//! The JSON is hand-emitted (the workspace deliberately has no JSON
//! dependency); process terms inside it use the concrete syntax, the
//! same renderer the serde impls serialize through.

use bpi::axioms::{Axiom, Blocks, Prover, ALL_AXIOMS};
use bpi::core::builder::*;
use bpi::core::syntax::{Defs, P};
use bpi::encodings::cycle::{detect_by_exploration, has_cycle_dfs, Graph, Verdict};
use bpi::equiv::{all_variants, congruent_strong, Opts};

struct Report {
    out: String,
    first: bool,
}

impl Report {
    fn new() -> Report {
        Report {
            out: String::from("{\n  \"paper\": \"A Broadcast-based Calculus for Communicating Systems (Ene & Muntean, 2001)\",\n  \"experiments\": [\n"),
            first: true,
        }
    }

    fn entry(&mut self, id: &str, statement: &str, verdict: bool, detail: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str(&format!(
            "    {{\"id\": {}, \"statement\": {}, \"reproduced\": {}, \"detail\": {}}}",
            json_str(id),
            json_str(statement),
            verdict,
            json_str(detail)
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n  ]\n}\n");
        self.out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let defs = Defs::new();
    let mut report = Report::new();

    // E5 / Remark 1.
    {
        let [a, b, c, e] = names(["a", "b", "c", "d"]);
        let p = out_(a, [b]);
        let q = out(a, [b], out_(c, [e]));
        let before = bpi::equiv::strong_barbed_bisimilar(&p, &q, &defs);
        let after = bpi::equiv::strong_barbed_bisimilar(&new(a, p), &new(a, q), &defs);
        report.entry(
            "E5",
            "Remark 1: ~b holds before, fails after restriction",
            before && !after,
            &format!("p1 ~b q1: {before}; nu a separates: {}", !after),
        );
    }

    // E10 / Theorem 1 on a curated pair.
    {
        let [a, b, x] = names(["a", "b", "x"]);
        let p = par(out_(a, [b]), nil());
        let q = out_(a, [b]);
        let all_agree = all_variants(&p, &q, &defs).iter().all(|(_, r)| *r);
        let _ = x;
        report.entry(
            "E10",
            "Theorem 1: the equivalences agree on a congruent pair",
            all_agree,
            "all six variants returned true",
        );
    }

    // E15/E16 — axioms vs semantics on the standard blocks.
    {
        let [a, b, c] = names(["a", "b", "c"]);
        let w = bpi::core::Name::new("w");
        let blocks = Blocks {
            ps: vec![
                out(a, [b], nil()),
                inp(b, [w], out_(w, [])),
                tau(out_(c, [])),
            ],
            ns: vec![a, b, c],
        };
        let mut sound = 0;
        let mut total = 0;
        for ax in ALL_AXIOMS {
            if ax == Axiom::Expansion {
                continue;
            }
            if let Some((lhs, rhs)) = ax.instantiate(&blocks) {
                total += 1;
                if congruent_strong(&lhs, &rhs, &defs, Opts::default()) {
                    sound += 1;
                }
            }
        }
        report.entry(
            "E15",
            "Theorem 6: axiom soundness against the semantic ~c",
            sound == total,
            &format!("{sound}/{total} instantiated schemas verified"),
        );
        // Completeness spot-check: prover == semantics on a noisy pair.
        let lhs: P = out(a, [], out_(b, []));
        let rhs: P = out(a, [], sum(out_(b, []), inp(c, [w], out_(b, []))));
        let sem = congruent_strong(&lhs, &rhs, &defs, Opts::default());
        let syn = Prover::new().congruent(&lhs, &rhs);
        let indep = !Prover::without_noisy().congruent(&lhs, &rhs);
        report.entry(
            "E16",
            "Theorem 7 + (H) independence on a noisy instance",
            sem && syn && indep,
            &format!("semantic={sem} prover={syn} prover-without-H-fails={indep}"),
        );
    }

    // E20 — Example 1 against the DFS baseline.
    {
        let cases = [
            (
                "triangle",
                Graph::new(&[("a", "b"), ("b", "c"), ("c", "a")]),
                true,
            ),
            ("chain", Graph::new(&[("a", "b"), ("b", "c")]), false),
        ];
        let mut ok = true;
        let mut detail = String::new();
        for (name, g, expect) in &cases {
            assert_eq!(has_cycle_dfs(g), *expect);
            let (verdict, _) = detect_by_exploration(g, 60_000);
            let agreed = matches!(
                (verdict, expect),
                (Verdict::Cycle, true) | (Verdict::NoCycle, false)
            );
            ok &= agreed;
            detail.push_str(&format!("{name}: {verdict:?}; "));
        }
        report.entry(
            "E20",
            "Example 1: distributed cycle detection agrees with DFS",
            ok,
            detail.trim_end(),
        );
    }

    println!("{}", report.finish());
}
