//! Congruence prover CLI: parse two finite processes and decide
//! `p ~c q`, showing the axiom-level justification trace on success and
//! a distinguishing experiment (with its modal formula) on failure.
//!
//! ```sh
//! cargo run --example prove -- 'a<>.b<>' 'a<>.(b<> + c(x).b<>)'
//! cargo run --example prove -- 'a<b>' 'a<c>'
//! cargo run --example prove                 # built-in demo pairs
//! ```

use bpi::axioms::Prover;
use bpi::core::parse_process;
use bpi::core::syntax::{Defs, P};
use bpi::equiv::{congruent_strong, explain, Opts, Variant};

fn prove(p: &P, q: &P) {
    let defs = Defs::new();
    println!("left  : {p}");
    println!("right : {q}");
    let semantic = congruent_strong(p, q, &defs, Opts::default());
    let (syntactic, trace) = Prover::new().congruent_traced(p, q);
    assert_eq!(
        semantic, syntactic,
        "prover and semantic checker must agree (Theorems 6–7)"
    );
    if syntactic {
        println!("verdict: p ~c q   (A ⊢ p = q)");
        println!("derivation skeleton:");
        for line in trace.iter().take(30) {
            println!("  {line}");
        }
        if trace.len() > 30 {
            println!("  … ({} more steps)", trace.len() - 30);
        }
    } else {
        println!("verdict: p ≁c q");
        // A distinguishing experiment from the labelled checker (the
        // congruence refines it, so any ~-distinction suffices; if the
        // processes are ~ but not ~c, show the separating condition).
        match explain(Variant::StrongLabelled, p, q, &defs, Opts::default()) {
            Some(dist) => {
                println!("distinguished by: {dist}");
                let (_, formula) = dist.to_formula();
                println!("as a modal formula: {formula}");
            }
            None => {
                println!(
                    "p ~ q as processes — a name identification separates them \
                     (see the trace):"
                );
                for line in trace.iter().rev().take(5).rev() {
                    println!("  {line}");
                }
            }
        }
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() == 2 {
        let p = parse_process(&args[0]).expect("left process");
        let q = parse_process(&args[1]).expect("right process");
        prove(&p, &q);
        return;
    }
    // Demo pairs: the noisy law, a refuted pair, and a match witness.
    let demos = [
        ("a<>.b<>", "a<>.(b<> + c(x).b<>)"),
        ("a<b>", "a<c>"),
        ("[x=y]{c<>}", "0"),
        ("new t. a<t>.t<>", "new u. a<u>.u<>"),
    ];
    for (l, r) in demos {
        prove(&parse_process(l).unwrap(), &parse_process(r).unwrap());
    }
}
