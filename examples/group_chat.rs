//! Example 3 of the paper as a runnable scenario: dynamic process
//! groups à la PVM, compiled to broadcast.
//!
//! ```sh
//! cargo run --example group_chat
//! ```
//!
//! A publisher broadcasts into a chat group; subscribers join, receive
//! and republish on their observation channels; one subscriber creates
//! a private side-channel group on the fly (`newgroup`) — the fresh
//! name guarantees nobody else can even accidentally listen in.

use bpi::encodings::pvm::{encode_system, obs_chan, observe, Expr, Instr, Program, System};
use bpi::semantics::Simulator;

fn main() {
    let subscriber = |tag: &str| {
        (
            tag.to_string(),
            Program::new(vec![
                Instr::JoinGroup(Expr::c("chat")),
                Instr::Receive("msg".into()),
                observe(tag, Expr::v("msg")),
            ]),
        )
    };
    let publisher = (
        "pub".to_string(),
        Program::new(vec![Instr::Bcast(Expr::c("chat"), Expr::c("hello"))]),
    );
    // A pair with a private side-channel: creator makes a fresh group,
    // whispers into it, and the confidant (spawned, so it can be handed
    // the fresh name) reports what it heard.
    let whisperer = (
        "whisper".to_string(),
        Program::new(vec![
            Instr::NewGroup("secret".into()),
            Instr::JoinGroup(Expr::v("secret")),
            Instr::Bcast(Expr::v("secret"), Expr::c("psst")),
            Instr::Receive("w".into()),
            observe("whisper", Expr::v("w")),
        ]),
    );

    let sys = System {
        tasks: vec![publisher, subscriber("alice"), subscriber("bob"), whisperer],
    };
    let (p, defs) = encode_system(&sys);
    println!("encoded system size: {} syntax nodes", p.size());

    // Run a handful of schedules and report deliveries.
    let mut delivered = std::collections::BTreeMap::<String, usize>::new();
    let mut runs_with_full_fanout = 0;
    let n_runs = 60;
    for seed in 0..n_runs {
        let mut sim = Simulator::new(&defs, seed);
        let tr = sim.run(&p, 700);
        let mut all = true;
        for tag in ["alice", "bob", "whisper"] {
            let got = !tr.outputs_on(obs_chan(tag)).is_empty();
            if got {
                *delivered.entry(tag.to_string()).or_default() += 1;
            }
            if tag != "whisper" {
                all &= got;
            }
        }
        if all {
            runs_with_full_fanout += 1;
        }
    }
    for (tag, n) in &delivered {
        println!("{tag:<8} delivered in {n}/{n_runs} schedules");
    }
    println!("full chat fan-out in {runs_with_full_fanout}/{n_runs} schedules");
    assert!(delivered.contains_key("alice") && delivered.contains_key("bob"));
    assert!(
        delivered.contains_key("whisper"),
        "the private group never delivered"
    );
}
