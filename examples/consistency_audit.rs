//! Example 2 of the paper as a runnable scenario: auditing a
//! partitioned, replicated database for serialization anomalies.
//!
//! ```sh
//! cargo run --example consistency_audit
//! ```
//!
//! Transactions executed during a network partition are replayed as
//! broadcasts to per-copy item managers; on the `unif` "reconnect"
//! broadcast the managers exchange their records, derive precedence
//! edges per the paper's three rules, and feed them to the distributed
//! cycle detector. `error` fires iff the merged history is
//! unserialisable.

use bpi::encodings::transactions::{
    detect_inconsistency, is_inconsistent_baseline, precedence_graph, Access, Event, History,
};

fn audit(name: &str, h: &History) {
    let g = precedence_graph(h);
    let baseline = is_inconsistent_baseline(h);
    let start = std::time::Instant::now();
    let detected = detect_inconsistency(h, 0..40, 2_000);
    println!(
        "{name:<22} events={:<2} edges={:<2} baseline={} distributed={} in {:.2?}",
        h.events.len(),
        g.edges.len(),
        if baseline { "INCONSISTENT" } else { "ok" },
        if detected { "INCONSISTENT" } else { "ok" },
        start.elapsed()
    );
    assert_eq!(baseline, detected, "detector disagrees with baseline");
}

fn main() {
    // A clean same-partition history.
    audit(
        "serial-reads",
        &History {
            events: vec![
                Event::new("T1", Access::Write, "x", "P0"),
                Event::new("T2", Access::Read, "x", "P0"),
                Event::new("T3", Access::Read, "x", "P0"),
            ],
        },
    );
    // Split-brain double write: contrary edges, 2-cycle.
    audit(
        "split-brain-write",
        &History {
            events: vec![
                Event::new("T1", Access::Write, "cart", "P0"),
                Event::new("T2", Access::Write, "cart", "P1"),
            ],
        },
    );
    // The classic lost update across the partition.
    audit(
        "lost-update",
        &History {
            events: vec![
                Event::new("T1", Access::Read, "acct", "P0"),
                Event::new("T1", Access::Write, "acct", "P0"),
                Event::new("T2", Access::Read, "acct", "P1"),
                Event::new("T2", Access::Write, "acct", "P1"),
            ],
        },
    );
    // Cross-item cycle through rule 3 only.
    audit(
        "write-skew",
        &History {
            events: vec![
                Event::new("T1", Access::Read, "x", "P0"),
                Event::new("T1", Access::Write, "y", "P0"),
                Event::new("T2", Access::Read, "y", "P1"),
                Event::new("T2", Access::Write, "x", "P1"),
            ],
        },
    );
}
