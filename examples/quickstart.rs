//! Quickstart: parse bπ processes, derive transitions, check
//! equivalences, and prove an axiom equality.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bpi::axioms::Prover;
use bpi::core::builder::*;
use bpi::core::parse_process;
use bpi::core::syntax::Defs;
use bpi::equiv::{congruent_strong, Checker, Opts, Variant};
use bpi::semantics::{Lts, Weak};

fn main() {
    let defs = Defs::new();
    let lts = Lts::new(&defs);

    // 1. Parse a broadcast system: one speaker, two listeners.
    let sys = parse_process("a<v> | a(x).x<> | a(y).y<y>").expect("parse");
    println!("system        : {sys}");

    // 2. One broadcast reaches *both* listeners in a single step.
    for (act, next) in lts.step_transitions(&sys) {
        println!("  —{act}→ {next}");
    }

    // 3. Barbs: what the environment can hear.
    let w = Weak::new(lts);
    println!(
        "weak barbs    : {:?}",
        w.weak_barbs(&sys).expect("within budget")
    );

    // 4. Equivalence checking: restriction turns broadcast into τ.
    let p = parse_process("new a. (a<v> | a(x).x<>)").expect("parse");
    let q = parse_process("tau.v<>").expect("parse");
    let checker = Checker::new(&defs);
    println!(
        "νa(āv ‖ a(x).x̄) ~ τ.v̄  : {}",
        checker.bisimilar(Variant::StrongLabelled, &p, &q)
    );
    println!(
        "…and weakly equal to v̄ : {}",
        checker.bisimilar(Variant::WeakLabelled, &p, &parse_process("v<>").unwrap())
    );

    // 5. The congruence and the axiom system agree — here on an
    //    instance of the broadcast-specific noisy axiom (H): a deaf
    //    process may be given an inoffensive ear.
    let [a, b, c, x] = names(["a", "b", "c", "x"]);
    let lhs = out(a, [], out_(b, []));
    let rhs = out(a, [], sum(out_(b, []), inp(c, [x], out_(b, []))));
    let semantic = congruent_strong(&lhs, &rhs, &defs, Opts::default());
    let syntactic = Prover::new().congruent(&lhs, &rhs);
    println!("ā.b̄ ~c ā.(b̄ + c(x).b̄) : semantic={semantic} prover={syntactic}");
    assert!(semantic && syntactic);
}
