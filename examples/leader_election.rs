//! Broadcast-arbitrated leader election, end to end.
//!
//! ```sh
//! cargo run --example leader_election            # 4 candidates
//! cargo run --example leader_election -- 6       # choose the size
//! ```
//!
//! Shows the three faces of the toolkit on one protocol:
//! exhaustive safety verification (the in-calculus monitor's `err`
//! channel is unreachable), exhaustive liveness (every maximal run
//! elects exactly once), and sampled executions (every candidate can
//! win; followers adopt the real winner).

use bpi::encodings::election::{election_system, every_run_elects, run_once, safe};
use bpi::semantics::{explore, ExploreOpts};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let (sys, defs, _ch) = election_system(n);
    println!("system ({n} candidates): {} syntax nodes", sys.size());

    let start = std::time::Instant::now();
    let g = explore(&sys, &defs, ExploreOpts::default());
    println!(
        "state space: {} states, {} transitions in {:.2?}",
        g.len(),
        g.edge_count(),
        start.elapsed()
    );

    match safe(n, 500_000) {
        Some(true) => println!("safety   : ✓ at most one leader (exhaustive)"),
        Some(false) => panic!("safety violated!"),
        None => println!("safety   : budget exhausted"),
    }
    if n <= 4 {
        assert!(every_run_elects(n, 500_000));
        println!("liveness : ✓ every maximal run elects exactly one leader");
    }

    let mut tally = std::collections::BTreeMap::<String, usize>::new();
    let runs = 50;
    for seed in 0..runs {
        if let (Some(winner), followers) = run_once(n, seed) {
            *tally.entry(winner.to_string()).or_default() += 1;
            assert!(followers.iter().all(|(_, boss)| *boss == winner));
        }
    }
    println!("win tally over {runs} random schedules:");
    for (node, wins) in tally {
        println!("  {node:<8} {wins}");
    }
}
