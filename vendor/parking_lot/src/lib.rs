//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of external dependencies are vendored as minimal API-compatible
//! shims over the standard library. Only the surface this workspace uses is
//! provided: `Mutex` (`lock`, `into_inner`) and `RwLock` (`read`, `write`).
//! Poisoning is absorbed: a poisoned std lock yields its guard anyway, which
//! matches parking_lot's no-poisoning semantics.

use std::sync::{self, PoisonError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
