//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`scope`] is provided, built on `std::thread::scope`. Matching
//! crossbeam's contract, a panicking child thread does not abort the
//! process: panics are caught inside each spawned closure and the first
//! payload is surfaced as the `Err` of the scope result, while the
//! remaining threads run to completion before `scope` returns.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

type Payload = Box<dyn Any + Send + 'static>;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    first_panic: Arc<Mutex<Option<Payload>>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure argument mirrors crossbeam's
    /// nested-scope handle; spawned closures here only ever ignore it.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&()) -> T + Send + 'env,
        T: Send + 'env,
    {
        let slot = Arc::clone(&self.first_panic);
        self.inner.spawn(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&()))) {
                let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
                if guard.is_none() {
                    *guard = Some(payload);
                }
            }
        });
    }
}

/// Runs `f` with a scope handle; all spawned threads are joined before
/// returning. Returns `Err` with the first panic payload if any child
/// panicked, `Ok` with `f`'s result otherwise.
pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let first_panic: Arc<Mutex<Option<Payload>>> = Arc::new(Mutex::new(None));
    let result = std::thread::scope(|s| {
        let handle = Scope {
            inner: s,
            first_panic: Arc::clone(&first_panic),
        };
        f(&handle)
    });
    let payload = first_panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    match payload {
        Some(payload) => Err(payload),
        None => Ok(result),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_run_and_join() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let r = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
            42
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    #[test]
    fn child_panic_is_captured() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
            s.spawn(|_| 1 + 1);
        });
        assert!(r.is_err());
    }
}
