//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses — `Rng::{gen, gen_bool,
//! gen_range}` over integer ranges, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng` — on top of a SplitMix64 core. The streams are of
//! course not those of the real `rand`; the workspace only relies on
//! determinism per seed and rough uniformity, never on specific values.

/// Core source of randomness: a full-period 64-bit stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over a range (`low..high` / `low..=high`).
pub trait SampleUniform: Copy {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
                debug_assert!(low <= high_incl);
                let span = (high_incl as i128) - (low as i128); // inclusive span - 1
                if span >= (u64::MAX as i128) {
                    return (low as i128 + (rng.next_u64() as i128)) as $ty;
                }
                let span = span as u64 + 1;
                // Modulo reduction: bias is ≤ span/2^64, irrelevant here.
                let draw = rng.next_u64() % span;
                ((low as i128) + draw as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + HasOne + std::ops::Sub<Output = T>> SampleRange<T>
    for std::ops::Range<T>
{
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end - T::one())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi)
    }
}

/// Helper so half-open ranges can compute their inclusive upper bound.
pub trait HasOne {
    fn one() -> Self;
}

macro_rules! impl_has_one {
    ($($ty:ty),*) => {$(impl HasOne for $ty { fn one() -> Self { 1 } })*};
}

impl_has_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        Self: Sized,
        Rge: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, full-period, passes the statistical needs of a
    /// test-suite driver. Stands in for rand's StdRng.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One warm-up step decorrelates small consecutive seeds.
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
            let y = rng.gen_range(1..=4);
            assert!((1..=4).contains(&y));
            let z: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_rates_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
