//! Offline stand-in for the `serde` crate.
//!
//! Carries the trait skeleton this workspace's hand-written impls compile
//! against: `ser::{Serialize, Serializer, Impossible}` with the seven
//! compound-serializer associated types, and `de::{Deserialize,
//! Deserializer, Visitor, Error}` plus `de::value::StrDeserializer`. There
//! is no derive macro and no data-format machinery — the workspace
//! serializes everything through strings (`collect_str` / `visit_str`).

pub mod ser {
    use std::fmt::Display;
    use std::marker::PhantomData;

    pub trait Serialize {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    pub trait Serializer: Sized {
        type Ok;
        type Error;
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
        type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
        type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
        type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
        type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
        type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
        fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
        fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
        fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
        fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
        fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
        fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
        fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
        fn serialize_unit_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
        ) -> Result<Self::Ok, Self::Error>;
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
        fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
        fn serialize_tuple_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleStruct, Self::Error>;
        fn serialize_tuple_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleVariant, Self::Error>;
        fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
        fn serialize_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error>;
        fn serialize_struct_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStructVariant, Self::Error>;

        fn collect_str<T: Display + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
            self.serialize_str(&value.to_string())
        }
    }

    pub trait SerializeSeq {
        type Ok;
        type Error;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    pub trait SerializeTuple {
        type Ok;
        type Error;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    pub trait SerializeTupleStruct {
        type Ok;
        type Error;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    pub trait SerializeTupleVariant {
        type Ok;
        type Error;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    pub trait SerializeMap {
        type Ok;
        type Error;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    pub trait SerializeStruct {
        type Ok;
        type Error;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    pub trait SerializeStructVariant {
        type Ok;
        type Error;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Uninhabited placeholder for compound serializers a format cannot
    /// produce.
    pub struct Impossible<Ok, Error> {
        never: std::convert::Infallible,
        _marker: PhantomData<(Ok, Error)>,
    }

    macro_rules! impossible_impls {
        ($($trait_:ident)*) => {$(
            impl<Ok, Error> $trait_ for Impossible<Ok, Error> {
                type Ok = Ok;
                type Error = Error;
                fn end(self) -> Result<Ok, Error> {
                    match self.never {}
                }
            }
        )*};
    }

    impossible_impls!(
        SerializeSeq SerializeTuple SerializeTupleStruct SerializeTupleVariant
        SerializeMap SerializeStruct SerializeStructVariant
    );

    // Serialize for common std types, via the string data model where
    // a natural text form exists.
    impl Serialize for str {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl Serialize for String {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(serializer)
        }
    }
}

pub mod de {
    use std::fmt;

    pub trait Error: Sized {
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    pub trait Visitor<'de>: Sized {
        type Value;

        fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

        fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
            struct Expected<'a, V>(&'a V);
            impl<'de, V: Visitor<'de>> fmt::Display for Expected<'_, V> {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    self.0.expecting(f)
                }
            }
            Err(E::custom(format!(
                "invalid value {v:?}, expected {}",
                Expected(&self)
            )))
        }
    }

    pub trait Deserializer<'de>: Sized {
        type Error: Error;

        fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

        fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
            self.deserialize_str(visitor)
        }
    }

    pub trait Deserialize<'de>: Sized {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    pub trait IntoDeserializer<'de, E: Error = value::Error> {
        type Deserializer: Deserializer<'de, Error = E>;
        fn into_deserializer(self) -> Self::Deserializer;
    }

    pub mod value {
        use super::{Deserializer, Error as DeError, IntoDeserializer, Visitor};
        use std::fmt;
        use std::marker::PhantomData;

        /// A plain string-carrying error.
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct Error {
            msg: String,
        }

        impl DeError for Error {
            fn custom<T: fmt::Display>(msg: T) -> Self {
                Error {
                    msg: msg.to_string(),
                }
            }
        }

        impl fmt::Display for Error {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.msg)
            }
        }

        impl std::error::Error for Error {}

        /// Deserializer over a borrowed string slice.
        #[derive(Clone, Copy, Debug)]
        pub struct StrDeserializer<'de, E> {
            input: &'de str,
            _marker: PhantomData<E>,
        }

        impl<'de, E> StrDeserializer<'de, E> {
            pub fn new(input: &'de str) -> Self {
                StrDeserializer {
                    input,
                    _marker: PhantomData,
                }
            }
        }

        impl<'de, E: DeError> Deserializer<'de> for StrDeserializer<'de, E> {
            type Error = E;

            fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                visitor.visit_str(self.input)
            }
        }

        impl<'de, E: DeError> IntoDeserializer<'de, E> for &'de str {
            type Deserializer = StrDeserializer<'de, E>;
            fn into_deserializer(self) -> Self::Deserializer {
                StrDeserializer::new(self)
            }
        }
    }
}

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};
