//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset this workspace uses: [`Bytes`] as a cheaply clonable,
//! hashable, shared immutable buffer that doubles as a consuming read cursor
//! (`get_u8` / `is_empty`), and [`BytesMut`] as a growable builder that
//! [`BytesMut::freeze`]s into a `Bytes`. Equality and hashing act on the
//! *remaining* bytes, so frozen buffers work as hash-map keys exactly like
//! the real crate.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Read-side cursor operations.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn get_u8(&mut self) -> u8;

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

/// Write-side append operations.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
}

/// A shared immutable byte buffer; clones share the allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Cursor position: `data[pos..]` is the live view.
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            pos: 0,
        }
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            pos: 0,
        }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_consumes() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u8(7);
        buf.put_u8(9);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 2);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u8(), 9);
        assert!(b.is_empty());
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
