//! Offline stand-in for the `proptest` crate.
//!
//! Supports the workspace's usage pattern only: `proptest!` blocks whose
//! tests each take one argument drawn from an integer range strategy
//! (`name in 0u64..N` or `..=N`), `prop_assert!` / `prop_assert_eq!`, and
//! `ProptestConfig::with_cases`. Cases are drawn deterministically from a
//! generator seeded by the test's location, so failures reproduce across
//! runs; there is no shrinking. The `PROPTEST_CASES` environment variable
//! overrides the case count, which CI uses to bound job time.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    /// The name proptest exports via its prelude.
    pub type ProptestConfig = Config;

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// The effective case count: the `PROPTEST_CASES` environment
        /// variable wins over the configured value so CI can pin runtime.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property case (what `prop_assert!` produces).
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives one `proptest!`-generated test: a deterministic stream of
    /// inputs derived from the test's source location.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        pub fn new(location_seed: u64) -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(location_seed ^ 0x70_72_6f_70_74_65_73_74),
            }
        }

        pub fn sample_u64_range(&mut self, range: std::ops::Range<u64>) -> u64 {
            self.rng.gen_range(range)
        }

        pub fn sample_u64_range_incl(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
            self.rng.gen_range(range)
        }
    }

    /// Stable tiny hash of a source location, used as the input-stream
    /// seed so each test gets its own deterministic sequence.
    pub fn location_seed(file: &str, line: u32, name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain(name.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ u64::from(line)
    }
}

pub mod strategy {
    /// Range strategies: the only strategies this stand-in understands.
    pub trait U64Strategy {
        fn draw(&self, runner: &mut crate::test_runner::TestRunner) -> u64;
    }

    impl U64Strategy for std::ops::Range<u64> {
        fn draw(&self, runner: &mut crate::test_runner::TestRunner) -> u64 {
            runner.sample_u64_range(self.clone())
        }
    }

    impl U64Strategy for std::ops::RangeInclusive<u64> {
        fn draw(&self, runner: &mut crate::test_runner::TestRunner) -> u64 {
            runner.sample_u64_range_incl(self.clone())
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each test body runs `cases` times with its
/// argument drawn from the given range strategy; `prop_assert!` failures
/// abort the case with the offending input in the panic message.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($arg:ident in $strategy:expr) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.resolved_cases();
                let seed = $crate::test_runner::location_seed(
                    file!(),
                    line!(),
                    stringify!($name),
                );
                let mut runner = $crate::test_runner::TestRunner::new(seed);
                for _case in 0..cases {
                    let $arg = $crate::strategy::U64Strategy::draw(&$strategy, &mut runner);
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property failed for {} = {}: {}",
                            stringify!($arg), $arg, e.message
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}
