//! Offline stand-in for the `criterion` crate.
//!
//! Implements the configuration/grouping API surface the workspace's
//! benches use, with a deliberately simple measurement loop: each
//! benchmark is warmed once and then timed for a handful of iterations,
//! and a single `name  time: median` line is printed. Statistical rigour
//! is out of scope — the goal is that `cargo bench` runs every bench
//! end-to-end quickly, exercising the measured code for real.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level driver, analogous to criterion's `Criterion`.
pub struct Criterion {
    sample_size: usize,
    #[allow(dead_code)]
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        let budget = self.measurement_time;
        run_one(&name.to_string(), samples, budget, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let budget = self.criterion.measurement_time;
        run_one(&label, samples, budget, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let budget = self.criterion.measurement_time;
        run_one(&label, samples, budget, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier carrying a function name and/or parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Hands the routine under test to the measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, f: &mut F) {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 1 } else { samples };

    // One untimed warm-up iteration, which also calibrates cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    f(&mut b);
    let once = warm_start.elapsed().max(Duration::from_nanos(1));

    // A single call that blows the whole budget is its own measurement.
    if once >= budget || quick {
        println!("{label:<48} time: {once:>12.2?}  (1 sample × 1 iter)");
        return;
    }

    // Keep total time near `budget`: spread it over `samples` rounds of
    // however many iterations one round affords, at least one.
    let per_round = budget.as_nanos() / (samples.max(1) as u128);
    let iters = (per_round / once.as_nanos().max(1)).clamp(1, 10_000) as u64;

    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed / u32::try_from(iters).unwrap_or(1));
    }
    per_iter.sort();
    let median = per_iter[per_iter.len() / 2];
    println!("{label:<48} time: {median:>12.2?}  ({samples} samples × {iters} iters)");
}

/// Declares a group of benchmark target functions; both criterion macro
/// forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),* $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )*
        }
    };
}

/// Entry point: runs every group. CLI arguments (`--bench`, `--quick`,
/// filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            // Swallow harness arguments such as --bench/--quick/filters.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )*
        }
    };
}
