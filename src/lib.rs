#![doc = include_str!("../README.md")]
//!
//! ---
//!
//! This facade crate re-exports the full bπ-calculus stack:
pub use bpi_axioms as axioms;
pub use bpi_core as core;
pub use bpi_encodings as encodings;
pub use bpi_equiv as equiv;
pub use bpi_obs as obs;
pub use bpi_semantics as semantics;
