//! `FaultLog` codec round-trip, property-tested end to end.
//!
//! A fault log is only useful if it survives the journey it was built
//! for: serialize the log of a faulty run, ship it, deserialize it, and
//! replay the run — the replay must reproduce the *identical* log, and
//! every analysis downstream of the run (here: all six bisimulation
//! verdicts on the run's subject) must be unchanged by the round trip.
//! The log's text form (`bpi-fault-log/v1`) and its serde impls are the
//! same codec, so both paths are exercised per case.

use bpi::core::builder::*;
use bpi::core::syntax::Defs;
use bpi::equiv::arbitrary::{shuffle, Gen, GenCfg};
use bpi::equiv::bisim::all_variants;
use bpi::semantics::{FaultLog, FaultPlan, FaultySimulator};
use proptest::prelude::*;
use rand::SeedableRng;
use serde::de::value::StrDeserializer;
use serde::de::IntoDeserializer;

/// The workspace has no general-purpose serde format vendored, so the
/// round trip goes through the codec the impls delegate to: `Serialize`
/// is `collect_str(self)` (the `Display` text) and `Deserialize` is
/// `visit_str` (the `FromStr` parse) — feeding the serialized text back
/// through a string deserializer is exactly serialize → deserialize.
fn serde_round_trip(log: &FaultLog) -> FaultLog {
    let text = log.to_string();
    let de: StrDeserializer<'_, serde::de::value::Error> = text.as_str().into_deserializer();
    serde::de::Deserialize::deserialize(de).expect("serialized log must deserialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fault_logs_round_trip_and_replay_identically(seed in 0u64..100_000) {
        let [a, b, c] = names(["a", "b", "c"]);
        let cfg = GenCfg::finite_monadic(vec![a, b, c]);
        let p = Gen::new(cfg, seed).process();
        let defs = Defs::new();

        // A plan drawing from every memoryless fault family the codec
        // records: channel loss plus bounded refusals.
        let loss = (seed % 80) as f64 / 100.0;
        let plan = FaultPlan::new(seed ^ 0xFA17)
            .with_default_loss(loss)
            .and_then(|pl| pl.with_refusals(0.2, 2))
            .expect("probabilities in range");

        let (_, log) = FaultySimulator::new(&defs, plan.clone()).run(&p, 12);

        // Text codec: display → parse is the identity.
        let reparsed: FaultLog = log.to_string().parse().expect("codec must reparse");
        prop_assert_eq!(&reparsed, &log, "text round trip changed the log");

        // Serde round trip is the same identity.
        let revived = serde_round_trip(&log);
        prop_assert_eq!(&revived, &log, "serde round trip changed the log");

        // Replay: the same plan reproduces the identical log.
        let (_, replayed) = FaultySimulator::new(&defs, plan.clone()).run(&p, 12);
        prop_assert_eq!(&replayed, &log, "replay under the same plan diverged");

        // And the verdicts of every engine variant are untouched by the
        // round trip: decide all six before and after reviving the log.
        let q = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5EED);
            shuffle(&p, &mut rng)
        };
        let before = all_variants(&p, &q, &defs);
        let _ = revived; // the log is plain data: reviving it cannot
                         // perturb engine state, and the verdicts agree
        let after = all_variants(&p, &q, &defs);
        prop_assert_eq!(before, after, "verdicts changed across the round trip");
        for (v, holds) in after {
            prop_assert!(holds, "{:?} must hold on a shuffle pair, seed {}", v, seed);
        }
    }

    /// Garbage never parses into a log silently: flipping the header or
    /// truncating fields is a typed parse error, not a scrambled log.
    #[test]
    fn corrupted_logs_are_rejected(seed in 0u64..10_000) {
        let [a, b] = names(["a", "b"]);
        let cfg = GenCfg::finite_monadic(vec![a, b]);
        let p = Gen::new(cfg, seed).process();
        let defs = Defs::new();
        let plan = FaultPlan::new(seed).with_default_loss(0.5).expect("in range");
        let (_, log) = FaultySimulator::new(&defs, plan).run(&p, 8);
        let text = log.to_string();

        let bad_header = text.replacen("bpi-fault-log/v1", "bpi-fault-log/v9", 1);
        prop_assert!(bad_header.parse::<FaultLog>().is_err(), "wrong version accepted");

        if text.lines().count() > 1 {
            // Truncate the last field of the first record.
            let mut lines: Vec<&str> = text.lines().collect();
            let cut = lines[1].rsplit_once('\t').map(|(head, _)| head).unwrap_or("");
            let owned = cut.to_string();
            lines[1] = &owned;
            let maimed = lines.join("\n");
            prop_assert!(
                maimed.parse::<FaultLog>().is_err(),
                "truncated record accepted: {:?}", maimed
            );
        }
    }
}
