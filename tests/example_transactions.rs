//! Experiment E21 — Example 2 end-to-end: distributed inconsistency
//! detection for partitioned transaction histories agrees with the
//! direct precedence-graph baseline.

use bpi::encodings::cycle::has_cycle_dfs;
use bpi::encodings::transactions::{
    detect_inconsistency, is_inconsistent_baseline, precedence_graph, random_history, Access,
    Event, History,
};

#[test]
fn paper_rules_produce_expected_edges() {
    // One event per rule on a three-transaction history.
    let h = History {
        events: vec![
            Event::new("T1", Access::Read, "x", "P0"),  // rule 1 source
            Event::new("T2", Access::Write, "x", "P0"), // rule 1: T1 → T2
            Event::new("T3", Access::Write, "x", "P1"), // rule 3 against both
        ],
    };
    let g = precedence_graph(&h);
    let has = |a: &str, b: &str| g.edges.contains(&(a.to_string(), b.to_string()));
    assert!(has("T1", "T2"), "rule 1 edge missing: {:?}", g.edges);
    assert!(has("T1", "T3"), "rule 3 read/write edge missing");
    // write/write across partitions: contrary edges.
    assert!(has("T2", "T3") && has("T3", "T2"), "contrary edges missing");
    assert!(has_cycle_dfs(&g));
}

#[test]
fn serializable_cross_partition_history_accepted() {
    // Reads in different partitions never conflict; a single writer per
    // item keeps things acyclic.
    let h = History {
        events: vec![
            Event::new("T1", Access::Write, "x", "P0"),
            Event::new("T2", Access::Read, "x", "P0"),
            Event::new("T3", Access::Read, "y", "P1"),
            Event::new("T4", Access::Write, "y", "P1"),
        ],
    };
    assert!(!is_inconsistent_baseline(&h));
    assert!(!detect_inconsistency(&h, 0..8, 600));
}

#[test]
fn lost_update_anomaly_detected() {
    // The classic partitioned lost update: both sides read then write
    // the same item in different partitions.
    let h = History {
        events: vec![
            Event::new("T1", Access::Read, "x", "P0"),
            Event::new("T1", Access::Write, "x", "P0"),
            Event::new("T2", Access::Read, "x", "P1"),
            Event::new("T2", Access::Write, "x", "P1"),
        ],
    };
    assert!(is_inconsistent_baseline(&h));
    assert!(
        detect_inconsistency(&h, 0..60, 2_000),
        "lost update never detected"
    );
}

#[test]
fn detection_agrees_with_baseline_on_positives() {
    // The distributed detector is sound: any error it raises corresponds
    // to a baseline-confirmed inconsistency; and over the sample it must
    // catch a decent share of the genuinely inconsistent histories.
    let mut caught = 0usize;
    let mut inconsistent = 0usize;
    for seed in 100..112u64 {
        let h = random_history(seed, 3, 2, 2);
        let base = is_inconsistent_baseline(&h);
        let detected = detect_inconsistency(&h, 0..25, 1_200);
        if detected {
            assert!(base, "false positive on {h:?}");
        }
        if base {
            inconsistent += 1;
            if detected {
                caught += 1;
            }
        }
    }
    if inconsistent > 0 {
        assert!(
            caught * 2 >= inconsistent,
            "detector caught only {caught}/{inconsistent}"
        );
    }
}
