//! Mutually recursive definition environments (`A⟨x̃⟩` + [`Defs`]) driven
//! through every layer: parsing, LTS, exploration, equivalence checking.
//!
//! The paper's examples are written as mutually recursive definitions
//! (Detector/Edge_manager, Item/Tr_Man/STr_Man); this file checks that
//! the `Call` resolution path is equivalent to inlined `rec` and that
//! the toolchain treats both uniformly.

use bpi::core::builder::*;
use bpi::core::syntax::{Defs, Ident};
use bpi::core::{parse_defs, parse_process};
use bpi::equiv::{Checker, Opts};
use bpi::semantics::{explore, ExploreOpts, Lts};

#[test]
fn parsed_defs_drive_the_lts() {
    // A two-state traffic light as mutually recursive definitions.
    let defs = parse_defs(
        "Red(go, stop) = stop<>.Green<go, stop>;\n\
         Green(go, stop) = go<>.Red<go, stop>;",
    )
    .unwrap();
    let p = parse_process("Red<go, stop>").unwrap();
    let lts = Lts::new(&defs);
    let ts = lts.step_transitions(&p);
    assert_eq!(ts.len(), 1);
    assert_eq!(
        ts[0].0.subject().map(|n| n.to_string()),
        Some("stop".into())
    );
    let g = explore(&p, &defs, ExploreOpts::default());
    assert_eq!(g.len(), 2, "the light has exactly two states");
    assert!(!g.truncated);
}

#[test]
fn call_and_rec_forms_are_bisimilar() {
    // The same behaviour written with Defs-based Call and syntactic rec.
    let [a, b] = names(["a", "b"]);
    let ping = Ident::new("MrPing");
    let pong = Ident::new("MrPong");
    let mut defs = Defs::new();
    defs.define(ping, vec![a, b], out(a, [], call(pong, [a, b])));
    defs.define(pong, vec![a, b], out(b, [], call(ping, [a, b])));
    let via_call = call(ping, [a, b]);

    let xid = Ident::new("MrBoth");
    let via_rec = rec(
        xid,
        [a, b],
        out(a, [], out(b, [], var(xid, [a, b]))),
        [a, b],
    );
    let checker = Checker::with_opts(&defs, Opts::default());
    assert!(checker.strong(&via_call, &via_rec));
    assert!(checker.weak(&via_call, &via_rec));
}

#[test]
fn defs_shadow_free_names_correctly() {
    // A definition whose body reuses its parameter names in binders:
    // substitution at unfold time must not capture.
    let defs = parse_defs("Echo(a) = a(x).x<a>.Echo<a>;").unwrap();
    let p = parse_process("Echo<chan>").unwrap();
    let lts = Lts::new(&defs);
    let chan = bpi::core::Name::intern_raw("chan");
    // Receiving the channel's own name: continuation broadcasts chan<chan>.
    let rs = lts.receives(&p, chan, &[chan]);
    assert_eq!(rs.len(), 1);
    let expected = parse_process("chan<chan>.Echo<chan>").unwrap();
    assert!(bpi::core::alpha_eq(&rs[0], &expected), "got {}", rs[0]);
}

#[test]
fn three_way_mutual_recursion_explores_finitely() {
    let defs = parse_defs(
        "StA(x, y, z) = x<>.StB<x, y, z>;\n\
         StB(x, y, z) = y<>.StC<x, y, z>;\n\
         StC(x, y, z) = z<>.StA<x, y, z>;",
    )
    .unwrap();
    let p = parse_process("StA<x, y, z>").unwrap();
    let g = explore(&p, &defs, ExploreOpts::default());
    assert_eq!(g.len(), 3);
    assert_eq!(g.edge_count(), 3);
    let an = bpi::semantics::analyse(&g);
    assert!(!an.may_diverge(), "visible cycle, not a τ-cycle");
    assert_eq!(an.traffic.len(), 3);
}

#[test]
fn undefined_call_panics_with_diagnostic() {
    let defs = Defs::new();
    let p = call(Ident::new("NoSuchAgent"), []);
    let lts = Lts::new(&defs);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| lts.step_transitions(&p)))
        .unwrap_err();
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("NoSuchAgent"), "diagnostic was: {msg}");
}
