//! Experiments E15, E18, E19 — Theorem 6: soundness of the axiom
//! system **A**.
//!
//! Every axiom schema of Tables 6–8 is instantiated with randomly
//! generated building blocks, and each instance `(lhs, rhs)` is checked
//! against the **semantic** congruence `~c` computed by the LTS-based
//! checker — a code path entirely independent of the axioms crate's
//! rewriting machinery. The expansion law and the head-normal-form
//! construction (Lemma 16) are covered as well.

use bpi::axioms::{expand_symbolic, hnf, Axiom, Blocks, ALL_AXIOMS};
use bpi::core::builder::*;
use bpi::core::syntax::{Defs, P};
use bpi::equiv::arbitrary::{Gen, GenCfg};
use bpi::equiv::{congruent_strong, Opts};
use proptest::prelude::*;

fn semantic_congruent(lhs: &P, rhs: &P) -> bool {
    let defs = Defs::new();
    congruent_strong(lhs, rhs, &defs, Opts::default())
}

fn random_blocks(seed: u64) -> Blocks {
    // Sequential, shallow blocks keep each ~c check fast while still
    // covering matches, restrictions and both prefix kinds.
    let ns = names(["a", "b", "c"]).to_vec();
    let mut cfg = GenCfg::sequential(ns.clone());
    cfg.max_depth = 2;
    let mut g = Gen::new(cfg, seed);
    Blocks {
        ps: vec![g.process(), g.process(), g.process()],
        ns,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn theorem6_axioms_sound_against_semantics(seed in 0u64..2_000) {
        let blocks = random_blocks(seed);
        for ax in ALL_AXIOMS {
            // The expansion instance over two random processes can be
            // large; keep it for the dedicated test below.
            if ax == Axiom::Expansion {
                continue;
            }
            if let Some((lhs, rhs)) = ax.instantiate(&blocks) {
                prop_assert!(
                    semantic_congruent(&lhs, &rhs),
                    "{:?} unsound: {}  ≠  {}", ax, lhs, rhs
                );
            }
        }
    }

    #[test]
    fn expansion_law_sound(seed in 0u64..300) {
        // Table 8 on random *sequential* operands (the guarded-sum shape
        // the law is stated for).
        let ns = names(["a", "b"]).to_vec();
        let mut cfg = GenCfg::sequential(ns);
        cfg.max_depth = 2;
        cfg.allow_restriction = false; // keep operands in guarded-sum shape
        let mut g = Gen::new(cfg, seed);
        let p = g.process();
        let q = g.process();
        if let Some(e) = expand_symbolic(&p, &q) {
            prop_assert!(
                semantic_congruent(&par(p.clone(), q.clone()), &e),
                "expansion unsound for {} ‖ {} = {}", p, q, e
            );
        }
    }

    #[test]
    fn lemma16_hnf_sound_and_depth_bounded(seed in 0u64..300) {
        let ns = names(["a", "b"]).to_vec();
        let mut cfg = GenCfg::sequential(ns);
        cfg.max_depth = 2;
        let mut g = Gen::new(cfg, seed);
        let p = g.process();
        let v = p.free_names();
        let h = hnf(&p, &v);
        prop_assert!(
            h.depth() <= p.depth(),
            "hnf deepened {}: {} -> {}", p, p.depth(), h.depth()
        );
        prop_assert!(
            semantic_congruent(&p, &h.to_process()),
            "hnf not ~c-equal for {}", p
        );
    }
}

#[test]
fn rp2_is_broadcast_specific() {
    // (RP2) νx x̄y.p = τ.νx p is the axiom that would FAIL in a
    // handshake calculus (there, an output with no possible partner is
    // stuck, not silent). Check both that it holds here and that the
    // τ really is observable modulo weak equivalence.
    let defs = Defs::new();
    let [x, y, b] = names(["x", "y", "b"]);
    let p = out_(b, []);
    let lhs = new(x, out(x, [y], p.clone()));
    let rhs = tau(new(x, p.clone()));
    assert!(congruent_strong(&lhs, &rhs, &defs, Opts::default()));
    // And νx x̄y.p is NOT strongly congruent to p itself (the silent
    // step is there).
    assert!(!congruent_strong(&lhs, &p, &defs, Opts::default()));
}

#[test]
fn noisy_axiom_sound_on_crafted_family() {
    // (H) instances with increasingly rich continuations.
    let defs = Defs::new();
    let [a, b, c, x] = names(["a", "b", "c", "x"]);
    let bodies: Vec<P> = vec![
        nil(),
        out_(b, []),
        sum(out_(b, []), tau(out_(c, []))),
        new(b, out_(a, [b])),
        inp_(b, [x]), // listens on b, not on a — side condition holds
    ];
    for p in bodies {
        let lhs = out(c, [], p.clone());
        let rhs = out(c, [], sum(p.clone(), inp(a, [x], p.clone())));
        assert!(
            congruent_strong(&lhs, &rhs, &defs, Opts::default()),
            "(H) unsound for continuation {p}"
        );
    }
}

#[test]
fn noisy_axiom_side_condition_is_necessary() {
    // Drop the side condition a ∉ In(p): with p listening on a, adding
    // a(x).p is NOT sound (the new branch discards differently).
    let defs = Defs::new();
    let [a, c, x] = names(["a", "c", "x"]);
    // p = a(x).c̄ : already listens on a.
    let p = inp(a, [x], out_(c, []));
    let lhs = out(c, [], p.clone());
    // Violating instance: a.p vs a.(p + a(x).p) — here receiving twice
    // on a changes behaviour: p + a(x).p after one receipt offers c̄ ‖ …
    // differently.
    let rhs = out(c, [], sum(p.clone(), inp(a, [x], tau(p.clone()))));
    assert!(
        !congruent_strong(&lhs, &rhs, &defs, Opts::default()),
        "a modified (H) without its side condition must be unsound"
    );
}
