//! Parser/pretty-printer round-trip properties: `parse(print(p)) == p`
//! for arbitrary terms, and stability of the concrete syntax.

use bpi::core::builder::*;
use bpi::core::{canon, parse_process};
use bpi::equiv::arbitrary::{Gen, GenCfg};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_is_identity(seed in 0u64..100_000) {
        let cfg = GenCfg {
            names: names(["a", "b", "c"]).to_vec(),
            max_depth: 4,
            allow_restriction: true,
            allow_match: true,
            allow_par: true,
            max_arity: 3,
        };
        let p = Gen::new(cfg, seed).process();
        let printed = p.to_string();
        let reparsed = parse_process(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        prop_assert_eq!(&p, &reparsed, "round trip changed {}", printed);
    }

    #[test]
    fn printing_is_stable_under_canon(seed in 0u64..50_000) {
        // canon → print → parse → canon is the identity on canonical
        // forms (canonical names survive the concrete syntax).
        let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
        let p = Gen::new(cfg, seed).process();
        let c = canon(&p);
        let reparsed = parse_process(&c.to_string()).unwrap();
        prop_assert_eq!(canon(&reparsed), c);
    }

    #[test]
    fn encode_decode_roundtrip(seed in 0u64..50_000) {
        let cfg = GenCfg::finite_monadic(names(["a", "b", "c"]).to_vec());
        let p = Gen::new(cfg, seed).process();
        let bytes = bpi::core::encode(&p);
        prop_assert_eq!(bpi::core::decode(&bytes), p);
    }

    #[test]
    fn prune_preserves_bisimilarity(seed in 0u64..3_000) {
        // The structural GC used by every explorer: `prune(p) ~ p`.
        let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
        let p = Gen::new(cfg, seed).process();
        let pruned = bpi::core::prune(&p);
        let defs = bpi::core::syntax::Defs::new();
        prop_assert!(
            bpi::equiv::strong_bisimilar(&p, &pruned, &defs),
            "prune broke {} into {}", p, pruned
        );
    }
}

#[test]
fn canonical_and_fresh_names_roundtrip() {
    // The reserved namespaces must survive the concrete syntax.
    for src in ["#0<#1>", "x~3(y).y<x~3>", "#b0<#e1,#w2>"] {
        let p = parse_process(src).expect(src);
        let printed = p.to_string();
        assert_eq!(parse_process(&printed).unwrap(), p);
    }
}
