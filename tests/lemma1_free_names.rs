//! Experiment E1 — Lemma 1 and Corollary 1: free names along transitions.
//!
//! ```text
//! 1. p —νỹ āx̃→ p'  ⇒  fn(p') ⊆ fn(p) ∪ ỹ  and  x̃∖ỹ ⊆ fn(p)
//! 2. p —a(x̃)→ p'   ⇒  fn(p') ⊆ fn(p) ∪ x̃
//! 3. p —τ→ p'      ⇒  fn(p') ⊆ fn(p)
//! Corollary 1: p ⇒ p' ⇒ fn(p') ⊆ fn(p)
//! ```
//!
//! Property-tested over randomly generated finite processes and over
//! recursive samples.

use bpi::core::action::Action;
use bpi::core::builder::*;
use bpi::core::name::NameSet;
use bpi::core::syntax::Defs;
use bpi::equiv::arbitrary::{Gen, GenCfg};
use bpi::semantics::{Lts, Weak};
use proptest::prelude::*;

fn subset(a: &NameSet, b: &NameSet) -> bool {
    a.iter().all(|n| b.contains(n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lemma1_on_random_processes(seed in 0u64..5_000) {
        let cfg = GenCfg::finite_monadic(names(["a", "b", "c"]).to_vec());
        let p = Gen::new(cfg, seed).process();
        let defs = Defs::new();
        let lts = Lts::new(&defs);
        let fnp = p.free_names();

        for (act, cont) in lts.step_transitions(&p) {
            let fnc = cont.free_names();
            match &act {
                Action::Tau => {
                    prop_assert!(subset(&fnc, &fnp), "τ grew fn: {p} -> {cont}");
                }
                Action::Output { objects, bound, .. } => {
                    // fn(p') ⊆ fn(p) ∪ ỹ (the extruded names may appear).
                    let mut allowed = fnp.clone();
                    for b in bound {
                        allowed.insert(*b);
                    }
                    prop_assert!(
                        subset(&fnc, &allowed),
                        "output grew fn beyond extrusions: {p} -{act}-> {cont}"
                    );
                    // x̃ ∖ ỹ ⊆ fn(p).
                    for o in objects {
                        if !bound.contains(o) {
                            prop_assert!(fnp.contains(*o), "free object {o} not free in {p}");
                        }
                    }
                }
                _ => unreachable!("step transitions are τ/output only"),
            }
        }

        // Clause 2: inputs may add exactly the received names.
        let pool = names(["a", "b", "c"]).to_vec();
        for (act, cont) in lts.input_transitions(&p, &pool) {
            let mut allowed = fnp.clone();
            for o in act.objects() {
                allowed.insert(*o);
            }
            prop_assert!(
                subset(&cont.free_names(), &allowed),
                "input grew fn: {p} -{act}-> {cont}"
            );
        }
    }

    #[test]
    fn corollary1_weak_reduction_shrinks_fn(seed in 0u64..2_000) {
        let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
        let p = Gen::new(cfg, seed).process();
        let defs = Defs::new();
        let w = Weak::new(Lts::new(&defs));
        let fnp = p.free_names();
        for q in w.tau_closure(&p).unwrap() {
            prop_assert!(subset(&q.free_names(), &fnp), "⇒ grew fn: {p} => {q}");
        }
    }
}

#[test]
fn lemma1_on_recursive_processes() {
    // (rec X(a,b). āb.X⟨a,b⟩)⟨a,b⟩ and extruding variants.
    let [a, b, t] = names(["a", "b", "t"]);
    let xid = bpi::core::syntax::Ident::new("L1Rec");
    let defs = Defs::new();
    let lts = Lts::new(&defs);
    let samples = vec![
        rec(xid, [a, b], out(a, [b], var(xid, [a, b])), [a, b]),
        rec(xid, [a, b], new(t, out(a, [t], var(xid, [a, b]))), [a, b]),
    ];
    for p in samples {
        let fnp = p.free_names();
        for (act, cont) in lts.step_transitions(&p) {
            let mut allowed = fnp.clone();
            for bnd in act.bound_names() {
                allowed.insert(*bnd);
            }
            assert!(
                cont.free_names().iter().all(|n| allowed.contains(n)),
                "fn grew on {p} -{act}-> {cont}"
            );
        }
    }
}
