//! Experiment E20 — Example 1 end-to-end: the distributed cycle
//! detector agrees with a classic DFS on randomly generated graphs.

use bpi::encodings::cycle::{
    detect_by_exploration, detect_by_simulation, detector_system, has_cycle_dfs, Graph, Verdict,
};
use bpi::semantics::Simulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(seed: u64, n_vertices: usize, n_edges: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for _ in 0..n_edges {
        let a = rng.gen_range(0..n_vertices);
        let b = rng.gen_range(0..n_vertices);
        edges.push((format!("n{a}"), format!("n{b}")));
    }
    Graph { edges }
}

#[test]
fn exhaustive_agreement_on_random_graphs() {
    // Graphs that combine a cycle with out-degree ≥ 2 genuinely have
    // infinite state spaces (broadcast *duplicates* a token at every
    // branching vertex, and copies circulate forever), so for cyclic
    // graphs we accept either an exploration hit or a simulation hit;
    // acyclic graphs always have finite spaces and must verify
    // exhaustively.
    let mut cyclic = 0;
    let mut acyclic = 0;
    for seed in 0..12u64 {
        let g = random_graph(seed, 3, 3);
        let expect = has_cycle_dfs(&g);
        let (verdict, graph) = detect_by_exploration(&g, 30_000);
        match verdict {
            Verdict::Cycle => {
                assert!(expect, "false positive on {:?}", g.edges);
                cyclic += 1;
            }
            Verdict::NoCycle => {
                assert!(!expect, "false negative on {:?}", g.edges);
                acyclic += 1;
            }
            Verdict::Unknown => {
                assert!(
                    expect,
                    "acyclic graph {:?} must have a finite space (got {} states)",
                    g.edges,
                    graph.len()
                );
                assert!(
                    detect_by_simulation(&g, 0..30, 1_500),
                    "cycle in {:?} found neither by exploration nor simulation",
                    g.edges
                );
                cyclic += 1;
            }
        }
    }
    // The sample must exercise both outcomes.
    assert!(
        cyclic > 0 && acyclic > 0,
        "{cyclic} cyclic / {acyclic} acyclic"
    );
}

#[test]
fn long_cycle_detected() {
    // A 5-cycle: the token has to be forwarded through every edge
    // manager before coming home.
    let g = Graph::new(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a")]);
    assert!(has_cycle_dfs(&g));
    assert!(
        detect_by_simulation(&g, 0..40, 2_000),
        "5-cycle never detected by simulation"
    );
}

#[test]
fn diamond_dag_stays_silent() {
    let g = Graph::new(&[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]);
    assert!(!has_cycle_dfs(&g));
    let (verdict, _) = detect_by_exploration(&g, 400_000);
    assert_eq!(verdict, Verdict::NoCycle);
}

#[test]
fn full_pipeline_with_dynamic_edge_feed() {
    // The paper's own architecture: edges stream in over the channel i
    // while earlier managers are already running — the persistent token
    // pumps make sure late managers still hear every token.
    let g = Graph::new(&[("a", "b"), ("b", "c"), ("c", "a")]);
    let (sys, defs, o) = detector_system(&g);
    let mut found = false;
    for seed in 0..60u64 {
        let mut sim = Simulator::new(&defs, seed);
        if sim.run_until_output(&sys, o, 2_500).saw_output_on(o) {
            found = true;
            break;
        }
    }
    assert!(found, "streaming pipeline never detected the 3-cycle");
}
