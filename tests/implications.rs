//! Experiments E7 and E9 — the inclusion lemmas between the
//! equivalences.
//!
//! * Lemmas 10, 11 (+ Corollaries 3, 4): labelled bisimilarity implies
//!   barbed and step bisimilarity, and — being preserved by static
//!   contexts (Lemmas 8, 9) — their context closures;
//! * Lemma 5 / Corollary 2: step-equivalence implies barbed
//!   equivalence, made executable through the paper's tester `T`, which
//!   converts broadcast observations into barbs.

use bpi::core::builder::*;
use bpi::core::syntax::Defs;
use bpi::equiv::arbitrary::{shuffle, Gen, GenCfg};
use bpi::equiv::contexts::{lemma5_tester, StaticContext};
use bpi::equiv::{Checker, Variant};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn labelled_implies_everything(seed in 0u64..4_000) {
        // Whenever p ~ q (labelled), every other variant must agree,
        // and every sampled static context must preserve barbed/step
        // bisimilarity (Corollaries 3 and 4).
        let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
        let mut g = Gen::new(cfg, seed);
        let p = g.process();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5151);
        let q = shuffle(&p, &mut rng);
        let defs = Defs::new();
        let c = Checker::new(&defs);
        prop_assert!(c.strong(&p, &q), "shuffle must preserve ~");
        for v in [
            Variant::StrongBarbed,
            Variant::WeakBarbed,
            Variant::StrongStep,
            Variant::WeakStep,
            Variant::WeakLabelled,
        ] {
            prop_assert!(c.bisimilar(v, &p, &q), "{:?} must follow from ~", v);
        }
        let pool: Vec<bpi::core::Name> = p.free_names().union(&q.free_names()).to_vec();
        for k in 0..3u64 {
            let mut crng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(31) + k);
            let ctx = StaticContext::random(&mut crng, &pool, 2);
            prop_assert!(
                c.bisimilar(Variant::StrongBarbed, &ctx.apply(&p), &ctx.apply(&q)),
                "context closure failed (Cor. 3)"
            );
            prop_assert!(
                c.bisimilar(Variant::StrongStep, &ctx.apply(&p), &ctx.apply(&q)),
                "context closure failed (Cor. 4)"
            );
        }
    }

    #[test]
    fn sampled_separation_refutes_labelled(seed in 0u64..2_000) {
        // Soundness of the context sampler: if some static context
        // separates C[p] and C[q] under barbed bisimilarity, then p ≁ q.
        let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
        let mut g = Gen::new(cfg, seed);
        let p = g.process();
        let q = g.process();
        let defs = Defs::new();
        let c = Checker::new(&defs);
        let separated = bpi::equiv::contexts::sampled_equivalence(
            Variant::StrongBarbed, &p, &q, &defs, 10, seed
        ).is_err();
        if separated {
            prop_assert!(!c.strong(&p, &q), "separated pair cannot be ~: {} vs {}", p, q);
        }
    }
}

#[test]
fn lemma5_implication_on_curated_pairs() {
    // Lemma 5 proves: if p‖T ≈φ q‖T (step bisimilarity of the
    // compositions with the tester) then p ≈b q. We check the
    // implication and its contrapositive on a curated family.
    let defs = Defs::new();
    let checker = Checker::new(&defs);
    let [a, b, c, x] = names(["a", "b", "c", "x"]);
    let pairs: Vec<(bpi::core::syntax::P, bpi::core::syntax::P)> = vec![
        // Equivalent pairs.
        (out(a, [b], nil()), par(out_(a, [b]), nil())),
        (tau(out_(a, [])), out_(a, [])),
        (inp_(a, [x]), nil()),
        // Barbed-inequivalent pairs: T must propagate the difference
        // into step-inequivalence of the compositions.
        (out_(a, []), out_(b, [])),
        (out(a, [], out_(b, [])), out(a, [], out_(c, []))),
        (new(a, out(a, [b], out_(c, []))), nil()), // τ.c̄ vs inert
    ];
    for (p, q) in pairs {
        let fns = p.free_names().union(&q.free_names());
        let (t, _, _) = lemma5_tester(&fns);
        let composed_step = checker.bisimilar(
            Variant::WeakStep,
            &par(p.clone(), t.clone()),
            &par(q.clone(), t.clone()),
        );
        let barbed = checker.bisimilar(Variant::WeakBarbed, &p, &q);
        if composed_step {
            assert!(barbed, "Lemma 5 violated: {p}‖T ≈φ {q}‖T but p ≉b q");
        }
        if !barbed {
            assert!(!composed_step, "contrapositive violated for {p} vs {q}");
        }
    }
}

#[test]
fn lemma5_tester_exposes_hidden_reductions() {
    // A step-observer with T in parallel hears what a τ-only observer
    // cannot: āb vs āb.c̄d (the Remark 1 pair) are weakly *barbed*
    // bisimilar alone, but their T-compositions are not weakly
    // step-bisimilar — the broadcasts are steps, and after the first
    // one the barbs differ. This is why step-equivalence (which closes
    // over such compositions) is finer-grained "for free".
    let defs = Defs::new();
    let checker = Checker::new(&defs);
    let [a, b, c, e] = names(["a", "b", "c", "d"]);
    let p = out_(a, [b]);
    let q = out(a, [b], out_(c, [e]));
    assert!(checker.bisimilar(Variant::WeakBarbed, &p, &q));
    let fns = p.free_names().union(&q.free_names());
    let (t, _, _) = lemma5_tester(&fns);
    assert!(
        !checker.bisimilar(
            Variant::WeakStep,
            &par(p.clone(), t.clone()),
            &par(q.clone(), t.clone())
        ),
        "the compositions must be step-separated"
    );
    // Consistently, barbed *equivalence* (context closure) also fails —
    // Remark 1's restriction context νa [·] separates them.
    assert!(!checker.bisimilar(Variant::WeakBarbed, &new(a, p), &new(a, q)));
}

#[test]
fn weak_is_coarser_than_strong() {
    // ≈ ⊋ ~ : τ-padding is invisible weakly, visible strongly — for all
    // three notions.
    let defs = Defs::new();
    let a = bpi::core::Name::new("a");
    let p = tau(tau(out_(a, [])));
    let q = out_(a, []);
    let c = Checker::new(&defs);
    for (strong, weak) in [
        (Variant::StrongBarbed, Variant::WeakBarbed),
        (Variant::StrongStep, Variant::WeakStep),
        (Variant::StrongLabelled, Variant::WeakLabelled),
    ] {
        assert!(!c.bisimilar(strong, &p, &q), "{strong:?} must see the τs");
        assert!(c.bisimilar(weak, &p, &q), "{weak:?} must absorb the τs");
    }
}
