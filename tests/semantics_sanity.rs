//! Experiment E2 — well-formedness of Tables 2 and 3.
//!
//! * **receive-xor-discard dichotomy**: for every process `p` and
//!   channel `a` (at a consistent arity), `p —a:→` iff `p` has no
//!   `a(ṽ)`-transition — a process either hears a broadcast or ignores
//!   it, never both, never neither;
//! * **outputs are never blocked**: composing an output-capable process
//!   with any listener/non-listener never removes its output subjects;
//! * the syntactic heads of `bpi-axioms` (derived from the *axioms*)
//!   agree with the SOS transitions of `bpi-semantics` (derived from
//!   Table 3) on finite processes — two independent implementations of
//!   the first transition layer.

use bpi::core::builder::*;
use bpi::core::canon::canon;
use bpi::core::name::Name;
use bpi::core::syntax::Defs;
use bpi::equiv::arbitrary::{Gen, GenCfg};
use bpi::semantics::{discards, Lts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn receive_xor_discard(seed in 0u64..10_000) {
        let ns = names(["a", "b", "c"]);
        let cfg = GenCfg::finite_monadic(ns.to_vec());
        let p = Gen::new(cfg, seed).process();
        let defs = Defs::new();
        let lts = Lts::new(&defs);
        let v = Name::new("vv");
        for a in ns {
            let receives = !lts.receives(&p, a, &[v]).is_empty();
            let discards = discards(&p, a, &defs);
            // The generator is monadic, so arity always matches and the
            // dichotomy is exact.
            prop_assert!(
                receives != discards,
                "dichotomy failed for {p} on {a}: receives={receives} discards={discards}"
            );
        }
    }

    #[test]
    fn outputs_never_blocked(seed in 0u64..10_000) {
        // For p ‖ q, every output subject of p alone is still an output
        // subject of the composition (rules 13/14: someone receives or
        // everyone discards — the send happens either way).
        let ns = names(["a", "b"]);
        let cfg = GenCfg::finite_monadic(ns.to_vec());
        let mut g = Gen::new(cfg, seed);
        let p = g.process();
        let q = g.process();
        let defs = Defs::new();
        let lts = Lts::new(&defs);
        let subjects = |x: &bpi::core::syntax::P| {
            lts.step_transitions(x)
                .into_iter()
                .filter(|(a, _)| a.is_output())
                .filter_map(|(a, _)| a.subject())
                .collect::<std::collections::BTreeSet<_>>()
        };
        let solo = subjects(&p);
        let composed = subjects(&par(p.clone(), q.clone()));
        for s in &solo {
            prop_assert!(
                composed.contains(s),
                "output on {s} of {p} blocked by composition with {q}"
            );
        }
    }

    #[test]
    fn axiom_heads_agree_with_sos(seed in 0u64..10_000) {
        // The Table 7/8 rewrites and the Table 3 SOS rules must produce
        // the same step moves (same multiset of (label, continuation) up
        // to α and the bound-output representative choice).
        let ns = names(["a", "b"]);
        let cfg = GenCfg::finite_monadic(ns.to_vec());
        let p = Gen::new(cfg, seed).process();
        let defs = Defs::new();
        let lts = Lts::new(&defs);

        // SOS side: τ and output steps, as canonical summand strings.
        let mut sos: Vec<String> = lts
            .step_transitions(&p)
            .into_iter()
            .map(|(act, cont)| summand_key(&act, &cont))
            .collect();
        sos.sort();
        sos.dedup();

        // Axiom side.
        let mut ax: Vec<String> = bpi::axioms::heads(&p)
            .into_iter()
            .filter(|(h, _)| !h.is_input())
            .map(|(h, cont)| head_key(&h, &cont))
            .collect();
        ax.sort();
        ax.dedup();

        prop_assert_eq!(sos, ax, "head disagreement on {}", p);
    }
}

/// Canonical key for an SOS step move: normalise extruded names to
/// positional markers and α-canonicalise the continuation.
fn summand_key(act: &bpi::core::Action, cont: &bpi::core::syntax::P) -> String {
    use bpi::core::subst::Subst;
    use bpi::core::Action;
    match act {
        Action::Tau => format!("tau.{}", canon(&bpi::core::prune(cont))),
        Action::Output {
            chan,
            objects,
            bound,
        } => {
            let mut s = Subst::identity();
            for (i, b) in bound.iter().enumerate() {
                s.bind(*b, Name::intern_raw(&format!("#K{i}")));
            }
            let objs: Vec<String> = objects.iter().map(|o| s.apply(*o).to_string()).collect();
            format!(
                "{}<{}>!{}.{}",
                chan,
                objs.join(","),
                bound.len(),
                canon(&bpi::core::prune(&s.apply_process(cont)))
            )
        }
        _ => unreachable!(),
    }
}

/// The same canonical key for an axiom-side head.
fn head_key(h: &bpi::axioms::Head, cont: &bpi::core::syntax::P) -> String {
    use bpi::axioms::Head;
    use bpi::core::subst::Subst;
    match h {
        Head::Tau => format!("tau.{}", canon(&bpi::core::prune(cont))),
        Head::Output(chan, objects) => {
            let objs: Vec<String> = objects.iter().map(|o| o.to_string()).collect();
            format!(
                "{}<{}>!0.{}",
                chan,
                objs.join(","),
                canon(&bpi::core::prune(cont))
            )
        }
        Head::BoundOutput {
            chan,
            objects,
            bound,
        } => {
            let mut s = Subst::identity();
            for (i, b) in bound.iter().enumerate() {
                s.bind(*b, Name::intern_raw(&format!("#K{i}")));
            }
            let objs: Vec<String> = objects.iter().map(|o| s.apply(*o).to_string()).collect();
            format!(
                "{}<{}>!{}.{}",
                chan,
                objs.join(","),
                bound.len(),
                canon(&bpi::core::prune(&s.apply_process(cont)))
            )
        }
        Head::Input(..) => unreachable!(),
    }
}

#[test]
fn dichotomy_holds_for_recursive_processes() {
    let [a, b, x] = names(["a", "b", "x"]);
    let xid = bpi::core::syntax::Ident::new("SanR");
    let defs = Defs::new();
    let lts = Lts::new(&defs);
    let p = rec(xid, [a], inp(a, [x], var(xid, [a])), [a]);
    assert!(!lts.receives(&p, a, &[b]).is_empty());
    assert!(!discards(&p, a, &defs));
    assert!(lts.receives(&p, b, &[a]).is_empty());
    assert!(discards(&p, b, &defs));
}
