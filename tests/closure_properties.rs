//! Experiments E4 and E8 — closure properties of the equivalences.
//!
//! * Lemma 3: barbed bisimilarity (strong and weak) is preserved by
//!   parallel composition — the *opposite* of the π-calculus situation;
//! * Lemmas 8, 9: labelled bisimilarity is preserved by restriction and
//!   parallel composition;
//! * and the negative side (Remarks 1, 2): neither barbed nor step
//!   bisimilarity is preserved by restriction — checked exactly in
//!   `counterexamples.rs`, and probed here on random pairs (when `p ~ q`
//!   labelled, the closures must hold; randomised evidence).

use bpi::core::builder::*;
use bpi::core::syntax::Defs;
use bpi::equiv::arbitrary::{shuffle, Gen, GenCfg};
use bpi::equiv::{Checker, Variant};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn lemma3_barbed_preserved_by_parallel(seed in 0u64..4_000) {
        // Take a pair known to be barbed-bisimilar (a shuffle of the
        // same process is even labelled-bisimilar, hence barbed), and a
        // random r: the compositions must stay barbed bisimilar.
        let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
        let mut g = Gen::new(cfg, seed);
        let p = g.process();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabc);
        let q = shuffle(&p, &mut rng);
        let r = g.process();
        let defs = Defs::new();
        let c = Checker::new(&defs);
        for v in [Variant::StrongBarbed, Variant::WeakBarbed] {
            prop_assert!(c.bisimilar(v, &p, &q));
            prop_assert!(
                c.bisimilar(v, &par(p.clone(), r.clone()), &par(q.clone(), r.clone())),
                "Lemma 3 failed for {:?}: {} vs {} with {}", v, p, q, r
            );
        }
    }

    #[test]
    fn lemma8_labelled_preserved_by_restriction(seed in 0u64..4_000) {
        let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
        let mut g = Gen::new(cfg, seed);
        let p = g.process();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x123);
        let q = shuffle(&p, &mut rng);
        let defs = Defs::new();
        let c = Checker::new(&defs);
        let a = bpi::core::Name::new("a");
        prop_assert!(c.strong(&p, &q));
        prop_assert!(
            c.strong(&new(a, p.clone()), &new(a, q.clone())),
            "Lemma 8 failed: νa{} vs νa{}", p, q
        );
        prop_assert!(c.weak(&new(a, p.clone()), &new(a, q.clone())));
    }

    #[test]
    fn lemma9_labelled_preserved_by_parallel(seed in 0u64..4_000) {
        let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
        let mut g = Gen::new(cfg, seed);
        let p = g.process();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x777);
        let q = shuffle(&p, &mut rng);
        let r = g.process();
        let defs = Defs::new();
        let c = Checker::new(&defs);
        prop_assert!(
            c.strong(&par(p.clone(), r.clone()), &par(q.clone(), r.clone())),
            "Lemma 9 failed: {}‖{} vs {}‖{}", p, r, q, r
        );
    }
}

#[test]
fn lemma3_on_discriminating_listener() {
    // The interesting case of Lemma 3: the composed r *listens* to what
    // p and q broadcast. p = āb + āb (dup) and q = āb are barbed
    // bisimilar; r = a(x).x̄ must not separate them.
    let defs = Defs::new();
    let [a, b, x] = names(["a", "b", "x"]);
    let p = sum(out_(a, [b]), out_(a, [b]));
    let q = out_(a, [b]);
    let r = inp(a, [x], out_(x, []));
    let c = Checker::new(&defs);
    assert!(c.bisimilar(Variant::StrongBarbed, &p, &q));
    assert!(c.bisimilar(
        Variant::StrongBarbed,
        &par(p.clone(), r.clone()),
        &par(q.clone(), r.clone())
    ));
    // And for the weak variant with a τ in front.
    let pt = tau(p);
    let qt = tau(q);
    assert!(c.bisimilar(Variant::WeakBarbed, &par(pt, r.clone()), &par(qt, r)));
}

#[test]
fn congruence_closed_under_input_prefix_needs_substitutions() {
    // Input prefix is *not* a static context: a(y).p closes p under
    // substitutions of y. ~ is not preserved (Remark 3) but ~c is
    // (Lemma 13) — shown here on the match witness.
    let defs = Defs::new();
    let [a, x, y, cch] = names(["a", "x", "y", "c"]);
    let p = mat_(x, y, out_(cch, []));
    let q = nil();
    let c = Checker::new(&defs);
    assert!(c.strong(&p, &q), "p ~ q");
    assert!(
        !c.strong(&inp(a, [y], p.clone()), &inp(a, [y], q.clone())),
        "a(y).p ≁ a(y).q — receiving x awakens the match"
    );
}
