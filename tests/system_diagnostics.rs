//! Cross-cutting diagnostics: the explorer, the parallel explorer, the
//! τ-SCC analysis and state normalisation agree with each other on the
//! repository's own example systems.

use bpi::core::builder::*;
use bpi::core::syntax::Defs;
use bpi::encodings::election::election_system;
use bpi::semantics::{analyse, explore, explore_parallel, normalize_state, ExploreOpts};

#[test]
fn parallel_explorer_agrees_on_election() {
    let (sys, defs, _ch) = election_system(4);
    let opts = ExploreOpts::default();
    let g1 = explore(&sys, &defs, opts);
    let g2 = explore_parallel(&sys, &defs, opts, 4);
    assert_eq!(g1.len(), g2.len());
    assert_eq!(g1.edge_count(), g2.edge_count());
    let mut s1: Vec<String> = g1.states.iter().map(|s| s.to_string()).collect();
    let mut s2: Vec<String> = g2.states.iter().map(|s| s.to_string()).collect();
    s1.sort();
    s2.sort();
    assert_eq!(s1, s2);
}

#[test]
fn election_analysis_profile() {
    let (sys, defs, ch) = election_system(3);
    let g = explore(&sys, &defs, ExploreOpts::default());
    let an = analyse(&g);
    assert!(!an.may_diverge(), "the protocol always terminates");
    assert!(!an.terminal_states.is_empty());
    // Traffic: claims, announcements and follow reports, nothing else.
    for chan in an.traffic.keys() {
        assert!(
            [ch.claim, ch.led, ch.follow].contains(chan),
            "unexpected traffic on {chan}"
        );
    }
    assert!(an.traffic[&ch.claim] >= 1);
}

#[test]
fn normalize_state_is_idempotent_and_stable() {
    use bpi::equiv::arbitrary::{Gen, GenCfg};
    let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
    for seed in 0..60u64 {
        let p = Gen::new(cfg.clone(), seed).process();
        let protected = p.free_names();
        let n1 = normalize_state(&p, &protected);
        let n2 = normalize_state(&n1, &protected);
        assert_eq!(n1, n2, "normalisation not idempotent on {p}");
    }
}

#[test]
fn truncation_budget_is_respected_exactly() {
    // A growing system: at any budget the explorer stops at ≤ budget
    // states and flags truncation.
    let defs = Defs::new();
    let b = bpi::core::Name::new("b");
    let xid = bpi::core::syntax::Ident::new("DgGrow");
    let p = rec(xid, [b], tau(par(var(xid, [b]), out_(b, []))), [b]);
    for budget in [1usize, 5, 17] {
        let g = explore(
            &p,
            &defs,
            ExploreOpts {
                max_states: budget,
                normalize_extruded: true,
            },
        );
        assert!(g.truncated);
        assert!(g.len() <= budget, "budget {budget} exceeded: {}", g.len());
    }
}
