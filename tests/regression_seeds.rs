//! The `*.proptest-regressions` seeds, promoted to named tests.
//!
//! Proptest replays the seed files automatically, but only for whoever
//! runs the owning property — a shrunk counterexample deserves a named
//! test that states *what* it once broke and runs in every suite
//! configuration (including `--test regression_seeds` in isolation).
//! Each test below reproduces the generator state of the recorded seed
//! exactly (same `GenCfg`, same derived RNGs) and re-asserts the
//! property on it; the seed files stay checked in so proptest still
//! front-loads them.

use bpi::axioms::{Axiom, Blocks, ALL_AXIOMS};
use bpi::core::builder::*;
use bpi::core::syntax::{Defs, P};
use bpi::core::{canon, parse_process};
use bpi::equiv::arbitrary::{shuffle, Gen, GenCfg};
use bpi::equiv::contexts::StaticContext;
use bpi::equiv::{congruent_strong, Checker, Opts, Variant};
use rand::SeedableRng;

fn semantic_congruent(lhs: &P, rhs: &P) -> bool {
    let defs = Defs::new();
    congruent_strong(lhs, rhs, &defs, Opts::default())
}

/// `tests/axioms_sound.proptest-regressions`, shrunk to `seed = 891`.
///
/// The blocks this seed generates include `a<c> + a(g1)` — a summand
/// that *listens on the same channel it sends on*. That shape is
/// exactly what the side conditions of the input-saturating axioms
/// guard against ((H) requires `a ∉ In(p)`, (SP) saturates pointwise
/// over instantiations), so an instantiation bug that ignores a block's
/// input set is invisible on blander blocks and unsound here.
#[test]
fn axioms_sound_seed_891() {
    let ns = names(["a", "b", "c"]).to_vec();
    let mut cfg = GenCfg::sequential(ns.clone());
    cfg.max_depth = 2;
    let mut g = Gen::new(cfg, 891);
    let blocks = Blocks {
        ps: vec![g.process(), g.process(), g.process()],
        ns,
    };
    for ax in ALL_AXIOMS {
        if ax == Axiom::Expansion {
            continue;
        }
        if let Some((lhs, rhs)) = ax.instantiate(&blocks) {
            assert!(
                semantic_congruent(&lhs, &rhs),
                "{ax:?} unsound on the seed-891 blocks: {lhs}  ≠  {rhs}"
            );
        }
    }
}

/// `tests/implications.proptest-regressions`, shrunk to `seed = 1624`.
///
/// The generated pair is `τ.τ.b(g1)` shuffled into *itself* — the
/// counterexample was never about the shuffle, but about the checkers:
/// a double-τ-guarded input is where the weak variants' saturation and
/// the sampled static contexts (which can add listeners on `b`) have to
/// agree with plain labelled bisimilarity, and a discard-handling bug
/// in any one variant breaks the inclusion lemmas on a literally
/// reflexive pair.
#[test]
fn implications_seed_1624() {
    let seed = 1624u64;
    let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
    let mut g = Gen::new(cfg, seed);
    let p = g.process();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5151);
    let q = shuffle(&p, &mut rng);
    let defs = Defs::new();
    let c = Checker::new(&defs);
    assert!(c.strong(&p, &q), "shuffle must preserve ~");
    for v in [
        Variant::StrongBarbed,
        Variant::WeakBarbed,
        Variant::StrongStep,
        Variant::WeakStep,
        Variant::WeakLabelled,
    ] {
        assert!(c.bisimilar(v, &p, &q), "{v:?} must follow from ~");
    }
    let pool: Vec<bpi::core::Name> = p.free_names().union(&q.free_names()).to_vec();
    for k in 0..3u64 {
        let mut crng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(31) + k);
        let ctx = StaticContext::random(&mut crng, &pool, 2);
        assert!(
            c.bisimilar(Variant::StrongBarbed, &ctx.apply(&p), &ctx.apply(&q)),
            "context closure failed (Cor. 3)"
        );
        assert!(
            c.bisimilar(Variant::StrongStep, &ctx.apply(&p), &ctx.apply(&q)),
            "context closure failed (Cor. 4)"
        );
    }
}

fn parser_gen_cfg() -> GenCfg {
    GenCfg {
        names: names(["a", "b", "c"]).to_vec(),
        max_depth: 4,
        allow_restriction: true,
        allow_match: true,
        allow_par: true,
        max_arity: 3,
    }
}

/// `tests/parser_roundtrip.proptest-regressions`, shrunk to
/// `seed = 45352`.
///
/// Generates `(c(g1,g2).new g3. 0 | c(g4)) + (a(g5) + (0 + 0) + b<b>.
/// (0 + 0))` — a parallel composition *inside* a sum, with a
/// restriction of an inert body and polyadic inputs. The `|`-under-`+`
/// nesting is the precedence corner where a printer that drops
/// parentheses re-associates the term, so the reparse compares unequal.
#[test]
fn parser_roundtrip_seed_45352() {
    let p = Gen::new(parser_gen_cfg(), 45352).process();
    let printed = p.to_string();
    let reparsed =
        parse_process(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
    assert_eq!(p, reparsed, "round trip changed {printed}");
}

/// `tests/parser_roundtrip.proptest-regressions`, shrunk to
/// `seed = 9724`.
///
/// Generates `b(g1,g2).new g3,g4. tau` — a polyadic input guarding a
/// *multi-binder* restriction of a bare `τ`. The `new x,y.` list form
/// and a prefix-final `tau` keyword are both printer/parser special
/// cases; this seed also covers the canon- and codec-stability of that
/// shape (the same properties the owning file checks at this range).
#[test]
fn parser_roundtrip_seed_9724() {
    let p = Gen::new(parser_gen_cfg(), 9724).process();
    let printed = p.to_string();
    let reparsed =
        parse_process(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
    assert_eq!(p, reparsed, "round trip changed {printed}");

    let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
    let p = Gen::new(cfg, 9724).process();
    let c = canon(&p);
    let reparsed = parse_process(&c.to_string()).unwrap();
    assert_eq!(canon(&reparsed), c, "canonical names must survive printing");

    let cfg = GenCfg::finite_monadic(names(["a", "b", "c"]).to_vec());
    let p = Gen::new(cfg, 9724).process();
    let bytes = bpi::core::encode(&p);
    assert_eq!(bpi::core::decode(&bytes), p, "codec round trip");
}
