//! Experiments E16 and E17 — Theorem 7: completeness of the axiom
//! system, and the independence of the noisy axiom (H).
//!
//! The normal-form prover of `bpi-axioms` implements the completeness
//! proof's comparison (complete conditions → head matching → (SP)
//! instantiation → (H) discard-matching). Agreement with the *semantic*
//! `~c` decided over the LTS is the executable content of
//! "`A ⊢ p = q` iff `p ~c q`":
//!
//! * prover accepts ⇒ semantics accepts (soundness, Theorem 6);
//! * semantics accepts ⇒ prover accepts (completeness, Theorem 7);
//!
//! checked in both directions on random finite processes. Disabling the
//! (H)-saturation loses exactly the noisy instances — the paper's
//! remark that the axioms are independent.

use bpi::axioms::Prover;
use bpi::core::builder::*;
use bpi::core::syntax::{Defs, P};
use bpi::equiv::arbitrary::{shuffle, Gen, GenCfg};
use bpi::equiv::{congruent_strong, Opts};
use proptest::prelude::*;
use rand::SeedableRng;

fn semantic(p: &P, q: &P) -> bool {
    let defs = Defs::new();
    congruent_strong(p, q, &defs, Opts::default())
}

fn syntactic(p: &P, q: &P) -> bool {
    Prover::new().congruent(p, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prover_agrees_with_semantics_random(seed in 0u64..5_000) {
        let ns = names(["a", "b"]).to_vec();
        let mut cfg = GenCfg::finite_monadic(ns);
        cfg.max_depth = 2;
        let mut g = Gen::new(cfg, seed);
        let (p, q) = g.related_pair();
        let sem = semantic(&p, &q);
        let syn = syntactic(&p, &q);
        prop_assert_eq!(
            sem, syn,
            "prover/semantics disagreement on {} vs {}", p, q
        );
    }

    #[test]
    fn prover_accepts_all_shuffles(seed in 0u64..5_000) {
        // Shuffles are provably congruent (S3/S4 rearrangements).
        let ns = names(["a", "b", "c"]).to_vec();
        let mut cfg = GenCfg::finite_monadic(ns);
        cfg.max_depth = 2;
        let mut g = Gen::new(cfg, seed);
        let p = g.process();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xf00);
        let q = shuffle(&p, &mut rng);
        prop_assert!(syntactic(&p, &q), "prover rejected a shuffle of {}", p);
    }
}

#[test]
fn prover_decides_paper_counterexamples() {
    let [a, b, c, x, y] = names(["a", "b", "c", "x", "y"]);
    // Non-congruent pairs.
    assert!(!syntactic(&out_(a, [b]), &out_(a, [c])));
    assert!(!syntactic(&mat_(x, y, out_(c, [])), &nil()));
    assert!(!syntactic(&inp_(a, [x]), &inp_(b, [x])));
    assert!(!syntactic(
        &out(a, [], sum(out_(b, []), out_(c, []))),
        &sum(out(a, [], out_(b, [])), out(a, [], out_(c, [])))
    ));
    // Congruent pairs.
    assert!(syntactic(&par(out_(a, [b]), nil()), &out_(a, [b])));
    assert!(syntactic(
        &new(x, out(a, [x], out_(x, []))),
        &new(y, out(a, [y], out_(y, [])))
    ));
}

#[test]
fn h_independence_noisy_instances_need_h() {
    // A family of (H) instances: semantically congruent, provable with
    // (H), unprovable without.
    let [a, b, c, x] = names(["a", "b", "c", "x"]);
    let instances: Vec<(P, P)> = vec![
        {
            let p = out_(b, []);
            (
                out(a, [], p.clone()),
                out(a, [], sum(p.clone(), inp(c, [x], p.clone()))),
            )
        },
        {
            let p = sum(out_(b, []), tau(nil()));
            (tau(p.clone()), tau(sum(p.clone(), inp(a, [x], p.clone()))))
        },
    ];
    for (lhs, rhs) in instances {
        assert!(semantic(&lhs, &rhs), "instance not semantically valid");
        assert!(
            Prover::new().congruent(&lhs, &rhs),
            "full prover must accept {lhs} = {rhs}"
        );
        assert!(
            !Prover::without_noisy().congruent(&lhs, &rhs),
            "prover without (H) must fail on {lhs} = {rhs} — independence"
        );
    }
}

#[test]
fn h_free_prover_still_sound() {
    // Removing (H) loses completeness, never soundness: whatever the
    // crippled prover accepts is still semantically congruent.
    let ns = names(["a", "b"]).to_vec();
    let mut cfg = GenCfg::finite_monadic(ns);
    cfg.max_depth = 2;
    for seed in 0..40u64 {
        let mut g = Gen::new(cfg.clone(), seed);
        let (p, q) = g.related_pair();
        if Prover::without_noisy().congruent(&p, &q) {
            assert!(semantic(&p, &q), "H-free prover unsound on {p} vs {q}");
        }
    }
}

#[test]
fn sp_saturation_required_for_per_value_matching() {
    // The (SP) shape: the two sides receive the same values but route
    // them through different summand splits — equal only thanks to
    // per-value matching.
    let [a, x, y] = names(["a", "x", "y"]);
    let p1 = inp(a, [x], mat(x, y, out_(x, []), out_(y, [x])));
    let q1 = sum(
        inp(a, [x], mat(x, y, out_(x, []), nil())),
        inp(a, [x], mat(x, y, nil(), out_(y, [x]))),
    );
    // p1 receives v: if v=y → ȳ else ȳ⟨v⟩… while q1 picks the branch
    // per value. Semantically: for v = y both give ȳ; for v ≠ y, p1
    // gives ȳ⟨v⟩, q1 can choose the second summand: ȳ⟨v⟩ — but q1 could
    // also choose the first (deadlock). Deadlock differs ⇒ NOT
    // congruent; both deciders must agree on the refusal.
    assert_eq!(semantic(&p1, &q1), syntactic(&p1, &q1));
    // And the positive (SP) law itself:
    let p = out_(x, []);
    let q = out_(y, [x]);
    let lhs = sum(inp(a, [x], p.clone()), inp(a, [x], q.clone()));
    let rhs = sum(lhs.clone(), inp(a, [x], mat(x, y, p, q)));
    assert!(semantic(&lhs, &rhs));
    assert!(syntactic(&lhs, &rhs));
}
