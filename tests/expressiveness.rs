//! Experiment E23 — Section 6 expressiveness results, executable.
//!
//! * the RAM encoding computes (Turing-completeness witness);
//! * the uniform π → bπ encoding is barb-adequate on a family of
//!   subjects;
//! * the CBS-contrast: static scoping interferes, dynamic scoping
//!   (ν + name-passing) isolates — and names received at run time
//!   become listening topics.

use bpi::encodings::pi::{barb_adequate, pi_may_barbs, runs_are_exclusive, Pi};
use bpi::encodings::ram::{interpret, program_add, program_double, run_ram, RamInstr, RamProgram};
use std::collections::BTreeSet;

#[test]
fn ram_computes_arithmetic() {
    for (a, b) in [(0u64, 4u64), (3, 2), (5, 0)] {
        let expect = interpret(&program_add(), &[a, b], 10_000).unwrap()[0];
        assert_eq!(run_ram(&program_add(), &[a, b], 0, 60_000), Some(expect));
    }
    let expect = interpret(&program_double(), &[4], 10_000).unwrap()[1];
    assert_eq!(run_ram(&program_double(), &[4], 1, 60_000), Some(expect));
}

#[test]
fn ram_handles_nested_loops() {
    // A two-register clear-and-copy: r1 := r0; r0 := 0.
    let prog = RamProgram {
        instrs: vec![
            RamInstr::DecJz(0, 3),
            RamInstr::Inc(1),
            RamInstr::Jmp(0),
            RamInstr::Halt,
        ],
        n_regs: 2,
    };
    assert_eq!(run_ram(&prog, &[5], 1, 60_000), Some(5));
    assert_eq!(run_ram(&prog, &[5], 0, 60_000), Some(0));
}

#[test]
fn pi_encoding_adequate_on_family() {
    let subjects: Vec<Pi> = vec![
        // Simple handshake.
        Pi::par(
            Pi::out("x", "y", Pi::Nil),
            Pi::inp("x", "z", Pi::out("z", "z", Pi::Nil)),
        ),
        // Output with no partner stays blocked.
        Pi::out("x", "y", Pi::out("w", "w", Pi::Nil)),
        // Input with no partner contributes nothing.
        Pi::inp("x", "z", Pi::out("z", "z", Pi::Nil)),
        // Chained communications.
        Pi::par(
            Pi::out("x", "a", Pi::out("y", "b", Pi::Nil)),
            Pi::par(
                Pi::inp("x", "u", Pi::Nil),
                Pi::inp("y", "v", Pi::out("v", "v", Pi::Nil)),
            ),
        ),
        // Name passing creates new conversation partners.
        Pi::new(
            "s",
            Pi::par(
                Pi::out("x", "s", Pi::inp("s", "r", Pi::out("r", "r", Pi::Nil))),
                Pi::inp("x", "c", Pi::out("c", "ans", Pi::Nil)),
            ),
        ),
    ];
    for p in subjects {
        assert!(barb_adequate(&p, 6_000), "adequacy failed for {p:?}");
    }
}

#[test]
fn pi_encoding_linearity() {
    // However many receivers compete, each π output is consumed by
    // exactly one of them.
    let p = Pi::par(
        Pi::out("x", "a", Pi::Nil),
        Pi::par(
            Pi::inp("x", "u", Pi::out("u", "u", Pi::Nil)),
            Pi::inp("x", "v", Pi::out("c", "c", Pi::Nil)),
        ),
    );
    assert!(runs_are_exclusive(&p, "a", "c", 0..60));
    // The reference interpreter agrees both continuations are possible.
    let barbs = pi_may_barbs(&p, 2_000);
    assert_eq!(
        barbs,
        BTreeSet::from(["x".to_string(), "a".to_string(), "c".to_string()])
    );
}

#[test]
fn cbs_contrast_suite() {
    use bpi::encodings::cbs::{observes, scoped_instances, shared_instances};
    let (shared, v1, v2, o1, _o2) = shared_instances();
    let (scoped, w1, w2, s1, s2) = scoped_instances();
    // Static sharing interferes; restriction isolates.
    assert!(
        observes(&shared, o1, v2),
        "CBS-style sharing must interfere"
    );
    assert!(!observes(&scoped, s1, w2));
    assert!(!observes(&scoped, s2, w1));
    assert!(observes(&scoped, s1, w1));
    let _ = v1;
}
