//! Experiment E25 — Definition 12, Lemma 15, Corollary 5: the
//! congruence is preserved by recursion.
//!
//! For open processes `E`, `F` with a free identifier `X`, the paper
//! defines `E ~c F` as `E(p) ~c F(p)` for all `p` (Definition 12) and
//! proves `(rec X(x̃).E)⟨x̃⟩ ~c (rec X(x̃).F)⟨x̃⟩` (Lemma 15,
//! Corollary 5). Executable rendering: we check `E(p) ~c F(p)` on a
//! battery of plugged processes, then compare the recursive closures
//! with the bisimilarity checker (recursion makes the processes
//! infinite-behaviour but finite-control, so the graph-based checkers
//! still decide them).

use bpi::core::builder::*;
use bpi::core::subst::plug_ident;
use bpi::core::syntax::{Defs, Ident, P};
use bpi::equiv::{congruent_strong, Checker, Opts};

fn defs() -> Defs {
    Defs::new()
}

/// The paper's own illustration of Definition 12:
/// `E = āb.X⟨a,b⟩ + νc āc.X⟨c,b⟩`, plugged with
/// `p = (z₁, z₂)(z̄₁.z̄₂ ‖ z̄₂)` gives
/// `āb.(ā.b̄ ‖ b̄) + νc āc.(c̄.b̄ ‖ b̄)`.
#[test]
fn definition12_example_shape() {
    let [a, b, c, z1, z2] = names(["a", "b", "c", "z1", "z2"]);
    let x = Ident::new("XPlug");
    let e = sum(
        out(a, [b], var(x, [a, b])),
        new(c, out(a, [c], var(x, [c, b]))),
    );
    let p = par(out(z1, [], out_(z2, [])), out_(z2, []));
    let plugged = plug_ident(&e, x, &[z1, z2], &p);
    let expected = sum(
        out(a, [b], par(out(a, [], out_(b, [])), out_(b, []))),
        new(c, out(a, [c], par(out(c, [], out_(b, [])), out_(b, [])))),
    );
    assert_eq!(plugged, expected, "got {plugged}");
}

/// Checks `E(p) ~c F(p)` over a battery of plugs, then the recursive
/// closure equality.
fn lemma15_check(e: &P, f: &P, x: Ident, params: &[bpi::core::Name]) {
    let d = defs();
    let [a, b] = names(["a", "b"]);
    let plugs: Vec<P> = vec![
        nil(),
        out_(a, []),
        out(a, [], out_(b, [])),
        inp_(a, [params.first().copied().unwrap_or(b)]),
    ];
    for p in &plugs {
        let ep = plug_ident(e, x, params, p);
        let fp = plug_ident(f, x, params, p);
        assert!(
            congruent_strong(&ep, &fp, &d, Opts::default()),
            "E(p) ≁c F(p) for plug {p}: {ep} vs {fp}"
        );
    }
    // The recursive closures. (rec X(x̃).E)⟨x̃⟩ vs (rec X(x̃).F)⟨x̃⟩.
    let re = rec(x, params.to_vec(), e.clone(), params.to_vec());
    let rf = rec(x, params.to_vec(), f.clone(), params.to_vec());
    let checker = Checker::new(&d);
    assert!(
        checker.strong(&re, &rf),
        "recursion broke the congruence: {re} vs {rf}"
    );
}

#[test]
fn lemma15_structural_bodies() {
    // E = āb.X⟨a,b⟩, F = āb.(X⟨a,b⟩ ‖ nil): congruent bodies, congruent
    // recursions.
    let [a, b] = names(["a", "b"]);
    let x = Ident::new("XRec1");
    let e = out(a, [b], var(x, [a, b]));
    let f = out(a, [b], par(var(x, [a, b]), nil()));
    lemma15_check(&e, &f, x, &[a, b]);
}

#[test]
fn lemma15_commuted_sums() {
    let [a, b] = names(["a", "b"]);
    let x = Ident::new("XRec2");
    let e = sum(out(a, [], var(x, [a, b])), out(b, [], var(x, [a, b])));
    let f = sum(out(b, [], var(x, [a, b])), out(a, [], var(x, [a, b])));
    lemma15_check(&e, &f, x, &[a, b]);
}

#[test]
fn lemma15_noisy_bodies() {
    // The (H)-shaped body: E = ā.X, F = ā.(X + φ c(w).X) with the
    // freshness condition — congruent for every plug that does not
    // listen on c, and the recursive closures agree.
    let [a, b, c, w] = names(["a", "b", "c", "w"]);
    let x = Ident::new("XRec3");
    let e = out(a, [], var(x, [a, b]));
    // φ = (c ≠ a) ∧ (c ≠ b) encoded with matches; the plugs we use
    // below listen on a at most, never on c.
    let guarded = mat(c, a, nil(), mat(c, b, nil(), inp(c, [w], var(x, [a, b]))));
    let f = out(a, [], sum(var(x, [a, b]), guarded));
    let d = defs();
    // Plugs that never listen on c.
    let plugs: Vec<P> = vec![nil(), out_(b, []), tau(out_(a, []))];
    for p in &plugs {
        let ep = plug_ident(&e, x, &[a, b], p);
        let fp = plug_ident(&f, x, &[a, b], p);
        assert!(
            congruent_strong(&ep, &fp, &d, Opts::default()),
            "noisy body: E(p) ≁c F(p) for {p}"
        );
    }
    let re = rec(x, [a, b], e, [a, b]);
    let rf = rec(x, [a, b], f, [a, b]);
    assert!(Checker::new(&d).strong(&re, &rf));
}

#[test]
fn non_congruent_bodies_produce_non_congruent_recursions() {
    // Sanity for the converse: if E(p) and F(p) differ, the recursions
    // differ too (here observable in the first unfolding).
    let [a, b, c] = names(["a", "b", "c"]);
    let x = Ident::new("XRec4");
    let e = out(a, [b], var(x, [a, b]));
    let f = out(a, [c], var(x, [a, b]));
    let d = defs();
    let re = rec(x, [a, b], e, [a, b]);
    let rf = rec(x, [a, b], f, [a, b]);
    assert!(!Checker::new(&d).strong(&re, &rf));
}

#[test]
fn plug_respects_shadowing() {
    // An inner rec X shadows the outer identifier: plugging must not
    // reach inside it.
    let [a, b] = names(["a", "b"]);
    let x = Ident::new("XShadow");
    let inner = rec(x, [a], out(a, [], var(x, [a])), [a]);
    let e = sum(var(x, [a, b]), inner.clone());
    let p = out_(b, []);
    let plugged = plug_ident(&e, x, &[a, b], &p);
    // The outer Var was replaced; the inner rec survived untouched.
    assert_eq!(plugged, sum(p, inner));
}
