//! Experiment E22 — Example 3 end-to-end: PVM-style group semantics,
//! cross-validated against a direct discrete-event baseline.

use bpi::encodings::pvm::{
    encode_system, obs_chan, observe, observed_values, Expr, Instr, Program, System,
};
use bpi::semantics::Simulator;
use std::collections::BTreeSet;

/// A tiny discrete-event baseline: tasks with mailboxes and group
/// membership, executed under one specific schedule (send everything,
/// then run receivers). It predicts the *achievable* deliveries that the
/// bπ encoding must be able to reproduce under some schedule.
fn baseline_bcast_deliveries(
    groups: &[(&str, &[&str])],
    sends: &[(&str, &str)],
) -> BTreeSet<(String, String)> {
    // groups: (group, members); sends: (group, message).
    let mut out = BTreeSet::new();
    for (g, m) in sends {
        for (g2, members) in groups {
            if g == g2 {
                for mem in *members {
                    out.insert((mem.to_string(), m.to_string()));
                }
            }
        }
    }
    out
}

#[test]
fn group_broadcast_matches_baseline() {
    let expected = baseline_bcast_deliveries(&[("g", &["B", "C"])], &[("g", "v")]);
    assert_eq!(expected.len(), 2);
    let member = |tag: &str| {
        Program::new(vec![
            Instr::JoinGroup(Expr::c("g")),
            Instr::Receive("x".into()),
            observe(tag, Expr::v("x")),
        ])
    };
    let sys = System {
        tasks: vec![
            (
                "A".into(),
                Program::new(vec![Instr::Bcast(Expr::c("g"), Expr::c("v"))]),
            ),
            ("B".into(), member("B")),
            ("C".into(), member("C")),
        ],
    };
    // Every baseline delivery is achievable by the encoding.
    for (member_tag, _msg) in expected {
        let vals = observed_values(&sys, obs_chan(&member_tag), 0..60, 500);
        assert!(
            vals.iter().any(|v| v.len() == 1),
            "member {member_tag} never delivered"
        );
    }
}

#[test]
fn sender_needs_no_knowledge_of_receivers() {
    // The paper's motivation: "processes may interact without having
    // explicit knowledge of each other; receivers may be dynamically
    // added or deleted without modifying the emitter". The same sender
    // program works against zero, one or two members.
    let sender = (
        "A".to_string(),
        Program::new(vec![Instr::Bcast(Expr::c("g"), Expr::c("v"))]),
    );
    let member = |tag: &str| {
        (
            tag.to_string(),
            Program::new(vec![
                Instr::JoinGroup(Expr::c("g")),
                Instr::Receive("x".into()),
                observe(tag, Expr::v("x")),
            ]),
        )
    };
    // Zero members: the broadcast still fires (non-blocking).
    let sys0 = System {
        tasks: vec![sender.clone()],
    };
    let (p0, defs0) = encode_system(&sys0);
    let mut sim = Simulator::new(&defs0, 1);
    let tr = sim.run(&p0, 200);
    assert!(tr.terminated, "lone sender must run to completion");

    // Two members: both can be served without touching the sender.
    let sys2 = System {
        tasks: vec![sender, member("m1"), member("m2")],
    };
    let v1 = observed_values(&sys2, obs_chan("m1"), 0..60, 500);
    let v2 = observed_values(&sys2, obs_chan("m2"), 0..60, 500);
    assert!(!v1.is_empty() && !v2.is_empty());
}

#[test]
fn monitoring_without_perturbation() {
    // "activity of a process can be monitored without modifying the
    // behaviour of the observed process": adding a silent monitor task
    // to a group does not change what the worker observes.
    let worker = (
        "W".to_string(),
        Program::new(vec![
            Instr::JoinGroup(Expr::c("g")),
            Instr::Receive("x".into()),
            observe("w", Expr::v("x")),
        ]),
    );
    let sender = (
        "S".to_string(),
        Program::new(vec![Instr::Bcast(Expr::c("g"), Expr::c("job"))]),
    );
    let monitor = (
        "M".to_string(),
        Program::new(vec![
            Instr::JoinGroup(Expr::c("g")),
            Instr::Receive("y".into()),
            observe("mon", Expr::v("y")),
        ]),
    );
    let without = System {
        tasks: vec![sender.clone(), worker.clone()],
    };
    let with = System {
        tasks: vec![sender, worker, monitor],
    };
    let w_without = observed_values(&without, obs_chan("w"), 0..50, 500);
    let w_with = observed_values(&with, obs_chan("w"), 0..50, 500);
    assert_eq!(
        w_without, w_with,
        "the monitor changed the worker's observations"
    );
    // And the monitor really hears the traffic.
    let m = observed_values(&with, obs_chan("mon"), 0..50, 500);
    assert!(!m.is_empty(), "monitor heard nothing");
}

#[test]
fn sequential_pipeline_of_sends() {
    // A three-stage pipeline: A → B → C by point-to-point sends,
    // values relayed by receives.
    let sys = System {
        tasks: vec![
            (
                "A".into(),
                Program::new(vec![Instr::Send(Expr::c("B"), Expr::c("tok"))]),
            ),
            (
                "B".into(),
                Program::new(vec![
                    Instr::Receive("x".into()),
                    Instr::Send(Expr::c("C"), Expr::v("x")),
                ]),
            ),
            (
                "C".into(),
                Program::new(vec![
                    Instr::Receive("y".into()),
                    observe("end", Expr::v("y")),
                ]),
            ),
        ],
    };
    let vals = observed_values(&sys, obs_chan("end"), 0..120, 800);
    assert!(
        vals.iter()
            .any(|v| v.len() == 1 && v[0].spelling() == "c_tok"),
        "token never traversed the pipeline: {vals:?}"
    );
}
