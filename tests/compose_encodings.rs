//! The compositional engine on the repository's own encodings: the
//! leader election is exactly the shape minimize-then-compose targets —
//! a top-level parallel composition of candidates plus a monitor, all
//! on shared broadcast channels. The monolithic build stays the oracle
//! (as in `crates/equiv/tests/compose_oracle.rs`); here the systems are
//! real protocol encodings rather than generated terms.

use bpi::core::builder::*;
use bpi::core::syntax::Defs;
use bpi::encodings::election::{candidate, channels, election_system, monitor};
use bpi::equiv::{build_composed, refine, refine_auto, shared_pool, Graph, Opts, Variant};
use bpi::semantics::Budget;

const ALL: [Variant; 6] = [
    Variant::StrongBarbed,
    Variant::StrongStep,
    Variant::StrongLabelled,
    Variant::WeakBarbed,
    Variant::WeakStep,
    Variant::WeakLabelled,
];

/// The named election (distinct candidate ids, so every component is
/// its own symmetry class): the gate accepts it — uniform arities on
/// `claim`/`led`, every state listens or discards, no restriction —
/// and the composed graph is bisimilar to the monolithic one under
/// every variant.
#[test]
fn composed_election_matches_monolithic() {
    let (sys, defs, _ch) = election_system(3);
    let opts = Opts::default();
    let pool = shared_pool(&sys, &sys, opts.fresh_inputs);
    let comp = build_composed(&sys, &defs, &pool, opts, &Budget::unlimited(), 1)
        .expect("election is finite")
        .expect("the election passes the compose gate");
    let mono = Graph::build(&sys, &defs, &pool, opts).expect("election fits");
    for v in ALL {
        assert!(
            refine(v, &mono, &comp).holds(0, 0),
            "{v:?}: composed election diverged from the monolithic graph"
        );
    }
}

/// Permuting the candidate list is behaviourally invisible, and the
/// compositional engine agrees with the monolithic verdict on it for
/// every variant.
#[test]
fn candidate_order_is_invisible_compositionally() {
    let ch = channels();
    let ids = ["n0", "n1", "n2"].map(bpi::core::Name::intern_raw);
    let build = |order: [usize; 3]| {
        par_of(
            order
                .iter()
                .map(|&i| candidate(&ch, ids[i]))
                .chain(std::iter::once(monitor(&ch))),
        )
    };
    let p = build([0, 1, 2]);
    let q = build([2, 0, 1]);
    let defs = Defs::new();
    let opts = Opts::default();
    let pool = shared_pool(&p, &q, opts.fresh_inputs);
    let cp = build_composed(&p, &defs, &pool, opts, &Budget::unlimited(), 1)
        .expect("finite")
        .expect("gate accepts");
    let cq = build_composed(&q, &defs, &pool, opts, &Budget::unlimited(), 1)
        .expect("finite")
        .expect("gate accepts");
    let gp = Graph::build(&p, &defs, &pool, opts).expect("fits");
    let gq = Graph::build(&q, &defs, &pool, opts).expect("fits");
    for v in ALL {
        let mono = refine_auto(v, &gp, &gq, 1).holds(0, 0);
        let comp = refine_auto(v, &cp, &cq, 1).holds(0, 0);
        assert!(mono, "{v:?}: candidate order must be invisible");
        assert_eq!(mono, comp, "{v:?}: compositional verdict diverged");
    }
}

/// An *anonymous* election — every candidate is the same hash-consed
/// term — is the symmetry-reduction showcase on a real encoding: the
/// orbit-canonical product is strictly smaller than the monolithic
/// graph (multisets vs ordered tuples) yet bisimilar to it.
#[test]
fn anonymous_election_exercises_symmetry_reduction() {
    let ch = channels();
    let anon = bpi::core::Name::intern_raw("anon");
    let n = 5;
    let sys = par_of(
        (0..n)
            .map(|_| candidate(&ch, anon))
            .chain(std::iter::once(monitor(&ch))),
    );
    let defs = Defs::new();
    let opts = Opts::default();
    let pool = shared_pool(&sys, &sys, opts.fresh_inputs);
    let comp = build_composed(&sys, &defs, &pool, opts, &Budget::unlimited(), 1)
        .expect("finite")
        .expect("gate accepts");
    let mono = Graph::build(&sys, &defs, &pool, opts).expect("fits");
    assert!(
        comp.len() < mono.len(),
        "orbit states ({}) must undercut monolithic states ({})",
        comp.len(),
        mono.len()
    );
    for v in ALL {
        assert!(
            refine(v, &mono, &comp).holds(0, 0),
            "{v:?}: symmetry-reduced election diverged from the monolithic graph"
        );
    }
}
