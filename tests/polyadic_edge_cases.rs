//! Edge cases of the polyadic calculus: multi-name scope extrusion,
//! repeated objects, wide tuples, and deep recursion — exercising the
//! corners Table 3's side conditions guard.

use bpi::axioms::Prover;
use bpi::core::builder::*;
use bpi::core::syntax::{Defs, Ident};
use bpi::core::Action;
use bpi::equiv::{congruent_strong, strong_bisimilar, Opts};
use bpi::semantics::Lts;

fn d() -> Defs {
    Defs::new()
}

#[test]
fn double_extrusion_in_one_broadcast() {
    // νx νy ā⟨x,y,x⟩ — two private names leave in one message, one of
    // them twice.
    let defs = d();
    let [a, x, y] = names(["a", "x", "y"]);
    let p = new(x, new(y, out_(a, [x, y, x])));
    let lts = Lts::new(&defs);
    let ts = lts.step_transitions(&p);
    assert_eq!(ts.len(), 1);
    match &ts[0].0 {
        Action::Output {
            chan,
            objects,
            bound,
        } => {
            assert_eq!(*chan, a);
            assert_eq!(bound.len(), 2);
            assert_eq!(objects.len(), 3);
            assert_eq!(objects[0], objects[2], "repeated object must stay equal");
            assert_ne!(objects[0], objects[1]);
        }
        other => panic!("expected output, got {other}"),
    }
}

#[test]
fn extruded_pair_reaches_receiver_coherently() {
    // νx νy (ā⟨x,y⟩ ‖ x̄?) with a receiver binding two names and
    // testing their distinctness.
    let defs = d();
    let [a, x, y, u, v, hit, miss] = names(["a", "x", "y", "u", "v", "hit", "miss"]);
    let sys = par(
        new(x, new(y, out(a, [x, y], inp(x, [], out_(hit, []))))),
        inp(a, [u, v], mat(u, v, out_(miss, []), out_(u, []))),
    );
    // After the broadcast: receiver got distinct fresh names, broadcasts
    // on the first; the sender's continuation hears it and signals hit.
    let g = bpi::semantics::explore(&sys, &defs, bpi::semantics::ExploreOpts::default());
    assert!(!g.truncated);
    assert!(g.can_output_on(hit), "private rendezvous failed");
    assert!(!g.can_output_on(miss), "fresh names were conflated");
}

#[test]
fn repeated_binder_positions_receive_componentwise() {
    // a(u,v).(u=v) distinguishes ā⟨b,b⟩ from ā⟨b,c⟩.
    let defs = d();
    let [a, b, c, u, v, eq, ne] = names(["a", "b", "c", "u", "v", "eq", "ne"]);
    let recv = inp(a, [u, v], mat(u, v, out_(eq, []), out_(ne, [])));
    let lts = Lts::new(&defs);
    let same = par(out_(a, [b, b]), recv.clone());
    let diff = par(out_(a, [b, c]), recv);
    let run = |p| {
        let g = bpi::semantics::explore(&p, &defs, bpi::semantics::ExploreOpts::default());
        (g.can_output_on(eq), g.can_output_on(ne))
    };
    assert_eq!(run(same), (true, false));
    assert_eq!(run(diff), (false, true));
    let _ = lts;
}

#[test]
fn polyadic_prover_agreement() {
    // The normal-form prover on polyadic terms: object tuples compared
    // componentwise, (SP)-style per-tuple matching.
    let [a, b, c, u, v] = names(["a", "b", "c", "u", "v"]);
    let defs = d();
    // ā⟨b,c⟩ ≁c ā⟨c,b⟩ …
    let p = out_(a, [b, c]);
    let q = out_(a, [c, b]);
    assert!(!Prover::new().congruent(&p, &q));
    assert!(!congruent_strong(&p, &q, &defs, Opts::default()));
    // … but they agree under the identification b = c.
    let p2 = mat(b, c, out_(a, [b, c]), nil());
    let q2 = mat(b, c, out_(a, [c, b]), nil());
    assert!(Prover::new().congruent(&p2, &q2));
    assert!(congruent_strong(&p2, &q2, &defs, Opts::default()));
    // Dyadic input vs nil: inputs are invisible regardless of arity.
    let r = inp_(a, [u, v]);
    assert!(strong_bisimilar(&r, &nil(), &defs));
    assert!(!Prover::new().congruent(&r, &nil()), "~c still separates");
}

#[test]
fn mixed_arities_on_one_channel() {
    // A process listening at two arities on the same channel receives
    // whichever tuple width is broadcast.
    let defs = d();
    let [a, b, c, x, y, one, two] = names(["a", "b", "c", "x", "y", "one", "two"]);
    let poly = sum(
        inp(a, [x], out_(one, [x])),
        inp(a, [x, y], out_(two, [x, y])),
    );
    let lts = Lts::new(&defs);
    let r1 = lts.receives(&poly, a, &[b]);
    assert_eq!(r1.len(), 1);
    assert!(bpi::core::alpha_eq(&r1[0], &out_(one, [b])));
    let r2 = lts.receives(&poly, a, &[b, c]);
    assert_eq!(r2.len(), 1);
    assert!(bpi::core::alpha_eq(&r2[0], &out_(two, [b, c])));
}

#[test]
fn deep_recursion_unfolds_lazily() {
    // A counter-like recursion with several parameters: 200 unfoldings
    // stay cheap because unfolding happens one prefix at a time.
    let defs = d();
    let [a, b, c] = names(["a", "b", "c"]);
    let id = Ident::new("DeepRec");
    let p = rec(
        id,
        [a, b, c],
        out(a, [b], var(id, [b, c, a])), // rotate the parameters
        [a, b, c],
    );
    let lts = Lts::new(&defs);
    let mut cur = p;
    let mut subjects = Vec::new();
    for _ in 0..200 {
        let ts = lts.step_transitions(&cur);
        assert_eq!(ts.len(), 1);
        subjects.push(ts[0].0.subject().unwrap());
        cur = ts[0].1.clone();
    }
    // The rotation cycles a → b → c → a …
    assert_eq!(subjects[0], a);
    assert_eq!(subjects[1], b);
    assert_eq!(subjects[2], c);
    assert_eq!(subjects[3], a);
    assert_eq!(subjects[199], subjects[199 % 3]);
}

#[test]
fn wide_tuples_roundtrip_through_everything() {
    // A 5-ary message (the arity of Example 2's transactions).
    let defs = d();
    let [a, t, ty, pt, req, val, okc] = names(["a", "t", "ty", "pt", "req", "val", "okq"]);
    let binders: Vec<_> = (0..5)
        .map(|i| bpi::core::Name::intern_raw(&format!("wb{i}")))
        .collect();
    let sys = par(
        out_(a, [t, ty, pt, req, val]),
        inp(a, binders.clone(), out_(okc, [binders[4]])),
    );
    let g = bpi::semantics::explore(&sys, &defs, bpi::semantics::ExploreOpts::default());
    assert!(g.can_output_on(okc));
    // And the parser handles the arity.
    let printed = sys.to_string();
    assert_eq!(bpi::core::parse_process(&printed).unwrap(), sys);
}
