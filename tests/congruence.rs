//! Experiments E12–E14 — Section 4: the congruence `~c`.
//!
//! * Remark 4: `~c ⊊ ~₊ ⊊ ~`, all inclusions strict;
//! * Lemma 13 / Theorem 2: `~c` is preserved by every operator —
//!   prefix, restriction, sum, match, parallel (randomised closure);
//! * Theorem 3: `~c` coincides with barbed congruence — the `C₁`
//!   rebinding context plus a name feeder realises any substitution
//!   inside a context, so non-congruent pairs are barbed-separated by a
//!   context and congruent pairs survive the same battery.

use bpi::core::builder::*;
use bpi::core::name::Name;
use bpi::core::syntax::{Defs, P};
use bpi::equiv::arbitrary::{shuffle, Gen, GenCfg};
use bpi::equiv::contexts::theorem3_context;
use bpi::equiv::graph::identification_substs;
use bpi::equiv::{congruent_strong, congruent_weak, sim_plus, Checker, Opts, Variant};
use proptest::prelude::*;
use rand::SeedableRng;

type CtxFn = Box<dyn Fn(&P) -> P>;

fn defs() -> Defs {
    Defs::new()
}

fn opts() -> Opts {
    Opts::default()
}

#[test]
fn remark4_strict_inclusion_chain() {
    let d = defs();
    let [x, y, c, a, b, v] = names(["x", "y", "c", "a", "b", "v"]);
    let checker = Checker::new(&d);

    // ~c ⊆ ~₊ ⊆ ~ on a positive witness.
    let p = out(a, [b], nil());
    let q = par(p.clone(), nil());
    assert!(congruent_strong(&p, &q, &d, opts()));
    assert!(sim_plus(&p, &q, &d, opts()));
    assert!(checker.strong(&p, &q));

    // Strictness of ~c ⊊ ~₊ : the match witness.
    let m = mat_(x, y, out_(c, []));
    assert!(sim_plus(&m, &nil(), &d, opts()));
    assert!(!congruent_strong(&m, &nil(), &d, opts()));

    // Strictness of ~₊ ⊊ ~ : bare input prefixes.
    let pa = inp_(a, [v]);
    let pb = inp_(b, [v]);
    assert!(checker.strong(&pa, &pb));
    assert!(!sim_plus(&pa, &pb, &d, opts()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn theorem2_congruence_closed_under_all_operators(seed in 0u64..3_000) {
        let d = defs();
        let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
        let mut g = Gen::new(cfg, seed);
        let p = g.process();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x44);
        let q = shuffle(&p, &mut rng);
        let r = g.process();
        prop_assert!(congruent_strong(&p, &q, &d, opts()));
        let [a, b, x] = names(["a", "b", "x"]);
        let contexts: Vec<(&str, CtxFn)> = vec![
            ("tau prefix", Box::new(move |t: &P| tau(t.clone()))),
            ("output prefix", Box::new(move |t: &P| out(a, [b], t.clone()))),
            ("input prefix", Box::new(move |t: &P| inp(a, [x], t.clone()))),
            ("restriction", Box::new(move |t: &P| new(b, t.clone()))),
            ("match", Box::new(move |t: &P| mat(a, b, t.clone(), nil()))),
        ];
        for (label, ctx) in contexts {
            prop_assert!(
                congruent_strong(&ctx(&p), &ctx(&q), &d, opts()),
                "~c broken under {}: {} vs {}", label, p, q
            );
        }
        // Binary contexts with a random partner.
        prop_assert!(
            congruent_strong(&sum(p.clone(), r.clone()), &sum(q.clone(), r.clone()), &d, opts()),
            "~c broken under + with {}", r
        );
        prop_assert!(
            congruent_strong(&par(p.clone(), r.clone()), &par(q.clone(), r.clone()), &d, opts()),
            "~c broken under ‖ with {}", r
        );
    }
}

/// Feeds the `C₁` context of Theorem 3 a concrete tuple of names,
/// realising the substitution `[ỹ/x̃]` inside a static context. The
/// rebinding channel `u` is restricted so that the feeding handshakes
/// are `τ` steps — barbed observation can only walk silent moves, and
/// Theorem 3's context closure includes exactly this restriction.
fn feed_c1(plugged: &P, u: Name, values: &[Name]) -> P {
    let mut feeder = nil();
    for &v in values.iter().rev() {
        feeder = out(u, [v], feeder);
    }
    new(u, par(plugged.clone(), feeder))
}

#[test]
fn theorem3_c1_context_separates_non_congruent_pairs() {
    let d = defs();
    let [x, y, c] = names(["x", "y", "c"]);
    // The match witness: bisimilar, not congruent — the separating
    // substitution merges x and y.
    let p = mat_(x, y, out_(c, []));
    let q = nil();
    assert!(Checker::new(&d).strong(&p, &q));
    assert!(!congruent_strong(&p, &q, &d, opts()));

    // Find the separating identification, then realise it with C₁.
    let fns = p.free_names().union(&q.free_names());
    let sep = identification_substs(&fns)
        .into_iter()
        .find(|s| {
            let ps = s.apply_process(&p);
            let qs = s.apply_process(&q);
            !sim_plus(&ps, &qs, &d, opts())
        })
        .expect("a separating identification exists");

    let (plug, u, _v) = theorem3_context(&fns);
    // Feed the collapsed values in the fixed order of the free names.
    let values: Vec<Name> = fns.iter().map(|n| sep.apply(n)).collect();
    let cp = feed_c1(&plug(&p), u, &values);
    let cq = feed_c1(&plug(&q), u, &values);
    let checker = Checker::new(&d);
    assert!(
        !checker.bisimilar(Variant::WeakBarbed, &cp, &cq),
        "C₁ plus the feeder must separate the non-congruent pair"
    );
}

#[test]
fn theorem3_c1_context_preserves_congruent_pairs() {
    let d = defs();
    let [a, b] = names(["a", "b"]);
    let p = out(a, [b], nil());
    let q = par(p.clone(), nil());
    assert!(congruent_strong(&p, &q, &d, opts()));
    let fns = p.free_names().union(&q.free_names());
    let (plug, u, _v) = theorem3_context(&fns);
    let checker = Checker::new(&d);
    // Any feeding of names from the free set keeps them barbed bisimilar.
    let name_list: Vec<Name> = fns.to_vec();
    for perm in [
        name_list.clone(),
        name_list.iter().rev().copied().collect::<Vec<_>>(),
        vec![name_list[0]; name_list.len()],
    ] {
        let cp = feed_c1(&plug(&p), u, &perm);
        let cq = feed_c1(&plug(&q), u, &perm);
        assert!(
            checker.bisimilar(Variant::WeakBarbed, &cp, &cq),
            "C₁ separated a congruent pair when fed {perm:?}"
        );
    }
}

#[test]
fn weak_congruence_mirrors_strong_shape() {
    // Theorems 4–5's relations behave analogously: ≈c is closed under
    // the operators and refines ≈.
    let d = defs();
    let [a, b] = names(["a", "b"]);
    let p = out(a, [], tau(out_(b, [])));
    let q = out(a, [], out_(b, []));
    assert!(congruent_weak(&p, &q, &d, opts()));
    for ctx in [
        |t: &P| tau(t.clone()),
        |t: &P| sum(t.clone(), out_(Name::new("zc"), [])),
        |t: &P| par(t.clone(), inp_(Name::new("a"), [])),
    ] {
        assert!(
            congruent_weak(&ctx(&p), &ctx(&q), &d, opts()),
            "≈c broken under a context"
        );
    }
    // And the initial-τ discriminator stays out of ≈c.
    let pt = tau(out_(a, []));
    let qt = out_(a, []);
    assert!(!congruent_weak(&pt, &qt, &d, opts()));
    assert!(Checker::new(&d).weak(&pt, &qt));
}
