//! Experiment E-faults — the lossy-broadcast encoding theorem and fault
//! determinism, property-tested over random systems.
//!
//! The bπ-calculus axiom (H) says a deaf process may be composed with an
//! inoffensive ear. Its operational shadow: message loss on channel `a`
//! is indistinguishable from reliable broadcast once every `a`-listener
//! is the noise process `!a(x̃).0` — dropping a delivery to noise and
//! performing it land in the same state. We check that statement
//! trace-set-exactly on randomly generated systems, plus the two
//! supporting properties the fault runtime relies on:
//!
//! 1. `traces(νloss. p ‖ !a(x̃).0) = traces(p ‖ !a(x̃).0)` — loss on `a`
//!    is invisible under the noise ear (per-seed, exact set equality).
//! 2. Reliable traces are a subset of lossy traces — injection only adds
//!    behaviour, never removes it.
//! 3. Same fault seed ⇒ identical trace and identical fault log.

use bpi::core::builder::*;
use bpi::core::syntax::Defs;
use bpi::equiv::arbitrary::{Gen, GenCfg};
use bpi::semantics::faults::reliable_traces;
use bpi::semantics::{deafen, lossy_traces, noise, FaultPlan, FaultySimulator};
use proptest::prelude::*;

const DEPTH: usize = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encoding theorem, operational form: once the system is deaf on
    /// `a` and the only `a`-ear is noise, loss injection on `a` changes
    /// the trace set not at all.
    #[test]
    fn loss_under_noise_ear_is_trace_invisible(seed in 0u64..5_000) {
        let [a, b, c] = names(["a", "b", "c"]);
        let cfg = GenCfg::finite_monadic(vec![a, b, c]);
        let p = Gen::new(cfg, seed).process();
        let defs = Defs::new();
        let sys = par(deafen(&p, a), noise(a, 1));
        prop_assert_eq!(
            lossy_traces(&sys, &defs, a, DEPTH),
            reliable_traces(&sys, &defs, DEPTH),
            "loss on a visible despite the noise ear, seed {}",
            seed
        );
    }

    /// Loss injection is monotone: every reliable trace survives.
    #[test]
    fn loss_injection_only_adds_traces(seed in 0u64..5_000) {
        let [a, b, c] = names(["a", "b", "c"]);
        let cfg = GenCfg::finite_monadic(vec![a, b, c]);
        let p = Gen::new(cfg, seed).process();
        let defs = Defs::new();
        let reliable = reliable_traces(&p, &defs, DEPTH);
        let lossy = lossy_traces(&p, &defs, a, DEPTH);
        prop_assert!(
            reliable.is_subset(&lossy),
            "loss removed a reliable trace, seed {}",
            seed
        );
    }

    /// Replayability: a fault plan is a pure function of its seed.
    #[test]
    fn same_seed_same_faults(seed in 0u64..5_000) {
        let (sys_seed, fault_seed) = (seed, seed.wrapping_mul(0x9e37_79b9).rotate_left(17));
        let [a, b, c] = names(["a", "b", "c"]);
        let cfg = GenCfg::finite_monadic(vec![a, b, c]);
        let p = Gen::new(cfg, sys_seed).process();
        let defs = Defs::new();
        let plan = FaultPlan::new(fault_seed)
            .with_channel_loss(a, 0.4)
            .and_then(|p| p.with_default_loss(0.1))
            .and_then(|p| p.with_refusals(0.2, 2))
            .expect("valid probabilities");
        let (t1, l1) = FaultySimulator::new(&defs, plan.clone()).run(&p, 40);
        let (t2, l2) = FaultySimulator::new(&defs, plan).run(&p, 40);
        prop_assert_eq!(format!("{t1:?}"), format!("{t2:?}"), "traces diverged");
        prop_assert_eq!(format!("{l1:?}"), format!("{l2:?}"), "fault logs diverged");
    }
}
