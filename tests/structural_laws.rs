//! Experiment E3 — Lemmas 2, 4, and 6: the twelve structural laws
//! (a)–(l) hold for barbed, step and labelled bisimilarity.
//!
//! Each law is checked exactly on representative processes and
//! property-tested on random finite processes, for all three strong
//! bisimilarities (the labelled one implies the weak variants by
//! Lemma 10/11, which `implications.rs` checks separately).

use bpi::core::builder::*;
use bpi::core::name::Name;
use bpi::core::subst::Subst;
use bpi::core::syntax::{Defs, P};
use bpi::equiv::arbitrary::{Gen, GenCfg};
use bpi::equiv::{all_variants, Checker, Variant};
use proptest::prelude::*;

fn assert_all_strong(p: &P, q: &P, what: &str) {
    let defs = Defs::new();
    let c = Checker::new(&defs);
    for v in [
        Variant::StrongBarbed,
        Variant::StrongStep,
        Variant::StrongLabelled,
    ] {
        assert!(c.bisimilar(v, p, q), "{what} failed for {v:?}: {p} vs {q}");
    }
}

fn gen_triple(seed: u64) -> (P, P, P) {
    let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
    let mut g = Gen::new(cfg, seed);
    (g.process(), g.process(), g.process())
}

#[test]
fn law_a_alpha_conversion() {
    let [a, x, y] = names(["a", "x", "y"]);
    let p = inp(a, [x], out_(x, []));
    let q = inp(a, [y], out_(y, []));
    assert!(bpi::core::alpha_eq(&p, &q));
    assert_all_strong(&p, &q, "(a) p =α q ⇒ p ~ q");
}

#[test]
fn laws_b_to_l_exact() {
    let [a, b, x, y, z] = names(["a", "b", "x", "y", "z"]);
    let p = out(a, [b], inp_(a, [x]));
    let q = tau(out_(b, []));
    let r = inp(b, [x], out_(x, []));

    // (b) p ‖ nil ~ p
    assert_all_strong(&par(p.clone(), nil()), &p, "(b)");
    // (c) p ‖ q ~ q ‖ p
    assert_all_strong(
        &par(p.clone(), q.clone()),
        &par(q.clone(), p.clone()),
        "(c)",
    );
    // (d) (p ‖ q) ‖ r ~ p ‖ (q ‖ r)
    assert_all_strong(
        &par(par(p.clone(), q.clone()), r.clone()),
        &par(p.clone(), par(q.clone(), r.clone())),
        "(d)",
    );
    // (e) p + nil ~ p
    assert_all_strong(&sum(p.clone(), nil()), &p, "(e)");
    // (f) p + q ~ q + p
    assert_all_strong(
        &sum(p.clone(), q.clone()),
        &sum(q.clone(), p.clone()),
        "(f)",
    );
    // (g) (p + q) + r ~ p + (q + r)
    assert_all_strong(
        &sum(sum(p.clone(), q.clone()), r.clone()),
        &sum(p.clone(), sum(q.clone(), r.clone())),
        "(g)",
    );
    // (h) νx p ~ p when x ∉ fn(p)
    let w = Name::new("unused");
    assert_all_strong(&new(w, p.clone()), &p, "(h)");
    // (i) νy νx p ~ νx νy p
    let inner = out(a, [x], out_(y, []));
    assert_all_strong(
        &new(y, new(x, inner.clone())),
        &new(x, new(y, inner.clone())),
        "(i)",
    );
    // (j) (νx p) ‖ q ~ νx (p ‖ q) when x ∉ fn(q)
    let px = out(a, [x], out_(x, []));
    let qq = out_(b, []);
    assert_all_strong(
        &par(new(x, px.clone()), qq.clone()),
        &new(x, par(px.clone(), qq.clone())),
        "(j)",
    );
    // (k) (νx p) + q ~ νx (p + q) when x ∉ fn(q)
    assert_all_strong(
        &sum(new(x, px.clone()), qq.clone()),
        &new(x, sum(px.clone(), qq.clone())),
        "(k)",
    );
    // (l) (y=z)(νx p), q ~ νx ((y=z)p, q) when x ∉ fn(q) ∪ {y,z}
    assert_all_strong(
        &mat(y, z, new(x, px.clone()), qq.clone()),
        &new(x, mat(y, z, px, qq)),
        "(l)",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn laws_on_random_processes(seed in 0u64..5_000) {
        let (p, q, r) = gen_triple(seed);
        let defs = Defs::new();
        let c = Checker::new(&defs);
        // A representative subset across all six variants, using the
        // joint driver from bisim::all_variants.
        for (v, res) in all_variants(&par(p.clone(), nil()), &p, &defs) {
            prop_assert!(res, "(b) failed for {:?} on {}", v, p);
        }
        for v in [Variant::StrongLabelled, Variant::WeakLabelled] {
            prop_assert!(
                c.bisimilar(v, &par(p.clone(), q.clone()), &par(q.clone(), p.clone())),
                "(c) failed for {:?}", v
            );
            prop_assert!(
                c.bisimilar(
                    v,
                    &sum(sum(p.clone(), q.clone()), r.clone()),
                    &sum(p.clone(), sum(q.clone(), r.clone()))
                ),
                "(g) failed for {:?}", v
            );
        }
        // (h) with a name fresh for p.
        let u = Name::intern_raw("#hfresh");
        prop_assert!(!p.free_names().contains(u));
        prop_assert!(c.strong(&new(u, p.clone()), &p), "(h) failed on {}", p);
    }

    #[test]
    fn substitution_respects_alpha_law(seed in 0u64..2_000) {
        // A sanity companion to (a): substituting then canonising equals
        // canonising then substituting, for binder-avoiding substitutions.
        let (p, _, _) = gen_triple(seed);
        let [a, b] = names(["a", "b"]);
        let s = Subst::single(a, b);
        let lhs = bpi::core::canon(&s.apply_process(&bpi::core::canon(&p)));
        let rhs = bpi::core::canon(&s.apply_process(&p));
        prop_assert_eq!(lhs, rhs);
    }
}
