//! Experiment E26 — Milner's τ-laws under broadcast (an extension the
//! paper leaves to future work: "for the weak case … we shall defer to
//! future work").
//!
//! In CCS the weak (observational) congruence satisfies
//!
//! ```text
//! (T1) α.τ.p = α.p
//! (T2) p + τ.p = τ.p
//! (T3) α.(p + τ.q) = α.(p + τ.q) + α.q
//! ```
//!
//! Under broadcast, (T1) and (T3) survive, but **(T2) fails whenever `p`
//! listens**: `p + τ.p` is obliged to hear a broadcast that `τ.p` may
//! silently duck (discarding is a capability, and `τ` changes it). This
//! is a genuinely broadcast-specific divergence from CCS, in the same
//! family as the noisy axiom (H) — and exactly the kind of fact an
//! executable semantics is for.

use bpi::core::builder::*;
use bpi::core::syntax::{Defs, P};
use bpi::equiv::{congruent_weak, Checker, Opts, Variant};

fn d() -> Defs {
    Defs::new()
}

fn weakly_congruent(p: &P, q: &P) -> bool {
    congruent_weak(p, q, &d(), Opts::default())
}

#[test]
fn t1_holds() {
    let [a, b, x] = names(["a", "b", "x"]);
    let bodies: Vec<P> = vec![nil(), out_(b, []), inp_(b, [x]), sum(out_(a, []), tau_())];
    for p in bodies {
        // Output prefix.
        assert!(
            weakly_congruent(&out(a, [], tau(p.clone())), &out(a, [], p.clone())),
            "(T1) failed for ā with {p}"
        );
        // Input prefix.
        assert!(
            weakly_congruent(&inp(a, [x], tau(p.clone())), &inp(a, [x], p.clone())),
            "(T1) failed for a(x) with {p}"
        );
        // τ prefix.
        assert!(
            weakly_congruent(&tau(tau(p.clone())), &tau(p.clone())),
            "(T1) failed for τ with {p}"
        );
    }
}

#[test]
fn t2_holds_for_deaf_processes() {
    // p with no unguarded inputs: discard capabilities agree, (T2) holds.
    let [a, b] = names(["a", "b"]);
    let deaf: Vec<P> = vec![
        nil(),
        out_(b, []),
        out(a, [], out_(b, [])),
        tau(out_(a, [])),
    ];
    for p in deaf {
        assert!(
            weakly_congruent(&sum(p.clone(), tau(p.clone())), &tau(p.clone())),
            "(T2) failed for deaf {p}"
        );
    }
}

#[test]
fn t2_fails_for_listening_processes() {
    // p = a(x).c̄: p + τ.p must hear a broadcast on a; τ.p discards it.
    let d = d();
    let [a, c, x] = names(["a", "c", "x"]);
    let p = inp(a, [x], out_(c, []));
    let lhs = sum(p.clone(), tau(p.clone()));
    let rhs = tau(p.clone());
    assert!(
        !weakly_congruent(&lhs, &rhs),
        "(T2) must fail under broadcast for listening p"
    );
    // It is not even weak labelled bisimilar: the discard capabilities
    // differ at the first step.
    let checker = Checker::new(&d);
    assert!(
        !checker.bisimilar(Variant::WeakLabelled, &lhs, &rhs),
        "≈ must already separate them"
    );
    // Semantic witness: in parallel with a broadcaster, rhs can duck the
    // message (τ first, message discarded mid-flight is impossible —
    // the broadcast happens before the τ) — precisely: rhs —a(v)?→ rhs
    // by discard, lhs cannot discard a.
    let lts = bpi::semantics::Lts::new(&d);
    assert!(!lts.discards(&lhs, a));
    assert!(lts.discards(&rhs, a));
}

#[test]
fn t3_holds_on_samples() {
    let [a, b, c, x] = names(["a", "b", "c", "x"]);
    let cases: Vec<(P, P)> = vec![
        (out_(b, []), out_(c, [])),
        (tau(out_(b, [])), nil()),
        (out_(b, []), inp_(c, [x])),
    ];
    for (p, q) in cases {
        let base = out(a, [], sum(p.clone(), tau(q.clone())));
        let lhs = base.clone();
        let rhs = sum(base, out(a, [], q.clone()));
        assert!(weakly_congruent(&lhs, &rhs), "(T3) failed for p={p}, q={q}");
    }
}

#[test]
fn tau_is_not_erasable_at_top_level() {
    // τ.p ≈ p but τ.p ≉c p (as in CCS observational congruence).
    let defs = d();
    let a = bpi::core::Name::new("a");
    let p = out_(a, []);
    let checker = Checker::new(&defs);
    assert!(checker.bisimilar(Variant::WeakLabelled, &tau(p.clone()), &p));
    assert!(!weakly_congruent(&tau(p.clone()), &p));
}
