//! Experiment E10 — Theorem 1: for image-finite processes the three
//! equivalences coincide:
//!
//! ```text
//! p ~b^e q  ⟺  p ~φ^e q  ⟺  p ~ q        (and the weak versions)
//! ```
//!
//! The left-hand relations quantify over all static contexts, so the
//! executable rendering checks both *sound* directions over a random
//! sample and reports an agreement matrix:
//!
//! * if `p ~ q` then no sampled static context separates barbed or step
//!   bisimilarity (⊇ direction, via Corollaries 3/4);
//! * if any sampled context (including the paper's tester `T`)
//!   separates them, then `p ≁ q` (⊆ direction);
//! * on the curated family below, the separating context predicted by
//!   the proof is found for *every* inequivalent pair, so the sampled
//!   relations decide the coincidence exactly there.

use bpi::core::builder::*;
use bpi::core::syntax::{Defs, P};
use bpi::equiv::arbitrary::{shuffle, Gen, GenCfg};
use bpi::equiv::contexts::{lemma5_tester, StaticContext};
use bpi::equiv::{Checker, Variant};
use rand::SeedableRng;

/// Tries to separate `p` and `q` under barbed or step bisimilarity
/// using: the empty context, the Lemma 5 tester, and `samples` random
/// static contexts.
fn find_separation(p: &P, q: &P, defs: &Defs, samples: usize, seed: u64) -> bool {
    let c = Checker::new(defs);
    for v in [Variant::StrongBarbed, Variant::StrongStep] {
        if !c.bisimilar(v, p, q) {
            return true;
        }
    }
    let fns = p.free_names().union(&q.free_names());
    let (t, _, _) = lemma5_tester(&fns);
    for v in [Variant::StrongBarbed, Variant::WeakBarbed] {
        if !c.bisimilar(v, &par(p.clone(), t.clone()), &par(q.clone(), t.clone())) {
            return true;
        }
    }
    let pool: Vec<bpi::core::Name> = fns.to_vec();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..samples {
        let ctx = StaticContext::random(&mut rng, &pool, 2);
        if !c.bisimilar(Variant::StrongBarbed, &ctx.apply(p), &ctx.apply(q))
            || !c.bisimilar(Variant::StrongStep, &ctx.apply(p), &ctx.apply(q))
        {
            return true;
        }
    }
    false
}

#[test]
fn coincidence_on_curated_family() {
    let defs = Defs::new();
    let [a, b, c, x] = names(["a", "b", "c", "x"]);
    // Pairs with known verdicts under ~ (labelled).
    let pairs: Vec<(P, P, bool)> = vec![
        // Structural laws: equivalent.
        (par(out_(a, [b]), nil()), out_(a, [b]), true),
        (
            sum(out_(a, []), out_(b, [])),
            sum(out_(b, []), out_(a, [])),
            true,
        ),
        (
            new(x, out(a, [x], out_(x, []))),
            new(b, out(a, [b], out_(b, []))),
            true,
        ),
        (inp_(a, [x]), nil(), true), // inputs invisible
        // Inequivalent pairs from the paper.
        (out_(a, [b]), out_(a, [c]), false),
        (
            out(a, [], sum(out_(b, []), out_(c, []))),
            sum(out(a, [], out_(b, [])), out(a, [], out_(c, []))),
            false,
        ),
        (
            sum(out_(b, []), tau(out_(c, []))),
            sum(out_(b, []), out(b, [], out_(c, []))),
            false,
        ),
        (new(a, out_(a, [b])), nil(), false), // τ vs inert
        (inp(a, [x], out_(x, [])), nil(), false),
    ];
    let checker = Checker::new(&defs);
    for (p, q, equivalent) in pairs {
        let labelled = checker.strong(&p, &q);
        assert_eq!(
            labelled, equivalent,
            "labelled verdict wrong for {p} vs {q}"
        );
        let separated = find_separation(&p, &q, &defs, 150, 99);
        assert_eq!(
            separated, !equivalent,
            "context separation must match ~ for {p} vs {q} (Theorem 1)"
        );
    }
}

#[test]
fn agreement_matrix_on_random_pairs() {
    // Randomised two-sided check: the sampled context relations never
    // contradict labelled bisimilarity, and we require the separating
    // search to succeed on a healthy majority of inequivalent pairs.
    let defs = Defs::new();
    let cfg = GenCfg::finite_monadic(names(["a", "b"]).to_vec());
    let checker = Checker::new(&defs);
    let mut agree = 0usize;
    let mut undecided = 0usize;
    let mut total = 0usize;
    for seed in 0..30u64 {
        let mut g = Gen::new(cfg.clone(), seed);
        let (p, q) = if seed % 2 == 0 {
            let p = g.process();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let q = shuffle(&p, &mut rng);
            (p, q)
        } else {
            (g.process(), g.process())
        };
        total += 1;
        let labelled = checker.strong(&p, &q);
        let separated = find_separation(&p, &q, &defs, 40, seed ^ 0xbeef);
        if labelled {
            // Sound direction must never fail.
            assert!(
                !separated,
                "context separated a labelled-bisimilar pair: {p} vs {q}"
            );
            agree += 1;
        } else if separated {
            agree += 1;
        } else {
            // Theorem 1 guarantees a separating context exists; the
            // sampler just did not find it within budget.
            undecided += 1;
        }
    }
    println!("Theorem 1 agreement: {agree}/{total} decided, {undecided} undecided");
    assert!(agree * 10 >= total * 7, "sampler too weak: {agree}/{total}");
}

#[test]
fn weak_coincidence_spot_checks() {
    // The weak statement of Theorem 1 on τ-padded variants.
    let defs = Defs::new();
    let [a, b] = names(["a", "b"]);
    let p = tau(out(a, [b], tau(nil())));
    let q = out_(a, [b]);
    let c = Checker::new(&defs);
    assert!(c.weak(&p, &q));
    assert!(!find_separation_weak(&p, &q, &defs, 60, 5));
}

fn find_separation_weak(p: &P, q: &P, defs: &Defs, samples: usize, seed: u64) -> bool {
    let c = Checker::new(defs);
    let pool: Vec<bpi::core::Name> = p.free_names().union(&q.free_names()).to_vec();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..samples {
        let ctx = StaticContext::random(&mut rng, &pool, 2);
        if !c.bisimilar(Variant::WeakBarbed, &ctx.apply(p), &ctx.apply(q))
            || !c.bisimilar(Variant::WeakStep, &ctx.apply(p), &ctx.apply(q))
        {
            return true;
        }
    }
    false
}
