//! Experiments E5, E6, E11, E24 — the paper's exact counterexamples.
//!
//! These pin down the *shape* of the theory: which operators break
//! which equivalence, and how the bπ-calculus inverts the π-calculus
//! folklore (barbed bisimilarity is preserved by ‖ but not by ν).

use bpi::core::builder::*;
use bpi::core::syntax::Defs;
use bpi::equiv::{
    strong_barbed_bisimilar, strong_bisimilar, strong_step_bisimilar, weak_barbed_bisimilar,
    Checker, Variant,
};

fn defs() -> Defs {
    Defs::new()
}

/// Remark 1: `p₁ = āb` and `q₁ = āb.c̄d` are strongly barbed bisimilar,
/// but `νa p₁` and `νa q₁` are not even weakly barbed bisimilar —
/// restriction turns the output into a τ whose derivative exposes `c̄d`
/// on one side only.
#[test]
fn remark1_restriction_breaks_barbed_bisimilarity() {
    let d = defs();
    let [a, b, c, e] = names(["a", "b", "c", "d"]);
    let p1 = out_(a, [b]);
    let q1 = out(a, [b], out_(c, [e]));
    assert!(strong_barbed_bisimilar(&p1, &q1, &d), "p₁ ~b q₁");
    let np = new(a, p1);
    let nq = new(a, q1);
    assert!(!strong_barbed_bisimilar(&np, &nq, &d), "νa p₁ ≁b νa q₁");
    assert!(!weak_barbed_bisimilar(&np, &nq, &d), "νa p₁ ≉b νa q₁");
}

/// Remark 2.1: step bisimilarity is not preserved by ‖.
/// `p₁ = b̄ + τ.c̄` and `q₁ = b̄ + b̄.c̄` are step bisimilar, but
/// composing with `r₁ = b()† + ā` separates them: `p₁ ‖ r₁` can step to
/// `(c̄ ‖ r₁)` silently while `q₁ ‖ r₁` cannot keep `r₁` intact.
#[test]
fn remark2_1_step_not_preserved_by_parallel() {
    let d = defs();
    let [a, b, c] = names(["a", "b", "c"]);
    let p1 = sum(out_(b, []), tau(out_(c, [])));
    let q1 = sum(out_(b, []), out(b, [], out_(c, [])));
    assert!(strong_step_bisimilar(&p1, &q1, &d), "p₁ ~φ q₁");
    // r₁ listens on b and can alternatively broadcast on a.
    let r1 = sum(inp_(b, []), out_(a, []));
    let pr = par(p1, r1.clone());
    let qr = par(q1, r1);
    assert!(
        !strong_step_bisimilar(&pr, &qr, &d),
        "composition must separate them (Remark 2.1)"
    );
}

/// Remark 2.2: step bisimilarity is not preserved by ν.
/// `p₂ = b̄a.ā ~φ q₂ = b̄c.ā` (labels are abstracted), but restricting
/// `a` leaves `p₂` with a reachable step-barb on `a` that `q₂`'s
/// τ-converted output cannot match.
#[test]
fn remark2_2_step_not_preserved_by_restriction() {
    let d = defs();
    let [a, b, c] = names(["a", "b", "c"]);
    let p2 = out(b, [a], out_(a, []));
    let q2 = out(b, [c], out_(a, []));
    assert!(strong_step_bisimilar(&p2, &q2, &d), "p₂ ~φ q₂");
    assert!(
        !strong_step_bisimilar(&new(a, p2), &new(a, q2), &d),
        "νa p₂ ≁φ νa q₂"
    );
}

/// Remark 2.3: barbed and step bisimilarity are incomparable.
#[test]
fn remark2_3_incomparability() {
    let d = defs();
    let [a, b, c, e] = names(["a", "b", "c", "e"]);
    // ~φ ⊄ ~b : p₁ ~φ q₁ (above) but p₁ ≁b q₁ (p₁ has a τ, q₁ has none).
    let p1 = sum(out_(b, []), tau(out_(e, [])));
    let q1 = sum(out_(b, []), out(b, [], out_(e, [])));
    assert!(strong_step_bisimilar(&p1, &q1, &d));
    assert!(!strong_barbed_bisimilar(&p1, &q1, &d));
    // ~b ⊄ ~φ : νa p₂ ~b νa q₂ but νa p₂ ≁φ νa q₂.
    let p2 = new(a, out(b, [a], out_(a, [])));
    let q2 = new(a, out(b, [c], out_(a, [])));
    assert!(strong_barbed_bisimilar(&p2, &q2, &d));
    assert!(!strong_step_bisimilar(&p2, &q2, &d));
}

/// Remark 3: labelled bisimilarity is not a congruence —
/// not preserved by choice, substitution, or (input) prefixing.
#[test]
fn remark3_labelled_not_a_congruence() {
    let d = defs();
    // Choice: a ~ b for input prefixes (inputs are invisible), but
    // a + c̄ ≁ b + c̄.
    let [a, b, c, x, y] = names(["a", "b", "c", "x", "y"]);
    let pa = inp_(a, [x]);
    let pb = inp_(b, [x]);
    assert!(strong_bisimilar(&pa, &pb, &d), "a ~ b");
    assert!(
        !strong_bisimilar(
            &sum(pa.clone(), out_(c, [])),
            &sum(pb.clone(), out_(c, [])),
            &d
        ),
        "a + c̄ ≁ b + c̄"
    );
    // Substitution: (x=y)c̄ ~ nil while x ≠ y, but not after [x/y].
    let m = mat_(x, y, out_(c, []));
    assert!(strong_bisimilar(&m, &nil(), &d));
    let collapsed = bpi::core::Subst::single(y, x).apply_process(&m);
    assert!(!strong_bisimilar(&collapsed, &nil(), &d));
    // Prefixing (consequence): a(y).m ≁ a(y).nil.
    assert!(!strong_bisimilar(&inp(a, [y], m), &inp_(a, [y]), &d));
}

/// Section 6's closing observation: `ā.(b̄+c̄)` and `ā.b̄+ā.c̄` are not
/// barbed *equivalent* (a static context separates them), even though no
/// single broadcast observer could influence the choice — bisimulation
/// is strictly finer than any testing scenario.
#[test]
fn section6_bisimulation_strictness() {
    let d = defs();
    let [a, b, c] = names(["a", "b", "c"]);
    let p = out(a, [], sum(out_(b, []), out_(c, [])));
    let q = sum(out(a, [], out_(b, [])), out(a, [], out_(c, [])));
    // Labelled and step bisimilarity separate them outright.
    assert!(!strong_bisimilar(&p, &q, &d));
    assert!(!strong_step_bisimilar(&p, &q, &d));
    // Barbed bisimilarity alone does not…
    assert!(strong_barbed_bisimilar(&p, &q, &d));
    // …but barbed equivalence (closure under static contexts) does:
    // νa ([·] ‖ a()) manufactures the separating τ.
    let ctx = |t: bpi::core::syntax::P| new(a, par(t, inp_(a, [])));
    assert!(!strong_barbed_bisimilar(
        &ctx(p.clone()),
        &ctx(q.clone()),
        &d
    ));
    // The random static-context sampler finds a separating context too.
    let found =
        bpi::equiv::contexts::sampled_equivalence(Variant::StrongBarbed, &p, &q, &d, 300, 11);
    assert!(
        found.is_err(),
        "sampler should find a distinguishing context"
    );
}

/// The checker object deduplicates work across variants — smoke-check
/// that a single `Checker` answers all six variants consistently on a
/// counterexample pair.
#[test]
fn variants_disagree_exactly_as_documented() {
    let d = defs();
    let [b, e] = names(["b", "e"]);
    let p1 = sum(out_(b, []), tau(out_(e, [])));
    let q1 = sum(out_(b, []), out(b, [], out_(e, [])));
    let c = Checker::new(&d);
    assert!(!c.bisimilar(Variant::StrongBarbed, &p1, &q1));
    assert!(c.bisimilar(Variant::StrongStep, &p1, &q1));
    assert!(!c.bisimilar(Variant::StrongLabelled, &p1, &q1));
    // Weak barbed: p₁'s τ is absorbed; weak step likewise holds; weak
    // labelled still fails (the τ-derivative ē must be matched under
    // labels).
    assert!(c.bisimilar(Variant::WeakStep, &p1, &q1));
}
