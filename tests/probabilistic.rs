//! Exact-vs-Monte-Carlo differential tests for the quantitative fault
//! model (PR 6 acceptance): on the cycle-detection and leader-election
//! encodings, at loss rates {0.0, 0.1, 0.3}, the exact bounded-depth
//! enumeration and a ≥10k-sample Monte-Carlo estimate must agree — the
//! Wilson 95% CI of the estimate overlaps the exact probability
//! interval `[p_lo, p_hi]`.
//!
//! The two backends share nothing but the fault plan: the enumerator
//! walks the weighted outcome tree of `step_distribution`, the sampler
//! replays `FaultySimulator` trajectories under derived seeds. Their
//! agreement cross-checks the DTMC structure against the simulator it
//! models. Note the horizons need not match: `[p_lo(d), p_hi(d)]`
//! brackets `P(hit within s)` for *every* `s ≥ d` (`p_hi` counts all
//! mass still alive at the horizon), so the sampler may run deeper than
//! the enumerator.

use bpi::encodings::{cycle, election};
use bpi::semantics::{
    convergence_exact, convergence_mc, Budget, CheckpointCfg, ExactOutcome, FaultPlan,
    ReliabilityEstimate,
};

const LOSSES: [f64; 3] = [0.0, 0.1, 0.3];
const SAMPLES: usize = 10_000;

fn assert_agreement(what: &str, loss: f64, exact: &ExactOutcome, mc: &ReliabilityEstimate) {
    let (lo, hi) = (exact.p_lo, exact.p_hi);
    let (ci_lo, ci_hi) = mc.ci;
    assert!(
        ci_lo <= hi + 1e-9 && lo <= ci_hi + 1e-9,
        "{what} at loss {loss}: exact [{lo:.4}, {hi:.4}] disjoint from MC CI \
         [{ci_lo:.4}, {ci_hi:.4}] (p̂ = {:.4} from {} samples)",
        mc.probability,
        mc.samples,
    );
}

#[test]
fn cycle_ring_exact_and_mc_agree() {
    let g = cycle::Graph::new(&[("a", "b"), ("b", "a")]);
    for (k, &loss) in LOSSES.iter().enumerate() {
        let plan = FaultPlan::new(0xC1C0 + k as u64)
            .with_default_loss(loss)
            .unwrap();
        let exact = cycle::convergence_probability_exact(&g, &plan, 6, &Budget::unlimited())
            .expect("loss-only plan");
        let mc = cycle::convergence_probability(&g, &plan, 40, SAMPLES);
        eprintln!(
            "cycle loss={loss}: exact [{:.4}, {:.4}] ({} states, {} branches)  mc p̂={:.4} ci=[{:.4}, {:.4}]",
            exact.p_lo, exact.p_hi, exact.states, exact.branches, mc.probability, mc.ci.0, mc.ci.1
        );
        assert_agreement("cycle ring-2", loss, &exact, &mc);
    }
}

#[test]
fn election_exact_and_mc_agree() {
    for (k, &loss) in LOSSES.iter().enumerate() {
        let plan = FaultPlan::new(0xE1EC + k as u64)
            .with_default_loss(loss)
            .unwrap();
        let exact = election::election_probability_exact(2, &plan, 8, &Budget::unlimited())
            .expect("loss-only plan");
        let mc = election::election_probability(2, &plan, 40, SAMPLES);
        eprintln!(
            "election loss={loss}: exact [{:.4}, {:.4}]  mc p̂={:.4} ci=[{:.4}, {:.4}]",
            exact.p_lo, exact.p_hi, mc.probability, mc.ci.0, mc.ci.1
        );
        assert_agreement("election n=2 (led)", loss, &exact, &mc);
        // The winner's announcement never depends on deliveries, so the
        // election converges at every loss rate.
        assert!(exact.p_lo > 0.99, "led is certain, got p_lo {}", exact.p_lo);
    }
}

#[test]
fn election_followership_tracks_the_loss_rate() {
    // A follower exists only if the losing candidate *heard* the claim:
    // with two candidates, P(follow) = 1 − loss exactly. This is the
    // loss-sensitive curve of the election (the led barb above is
    // loss-blind), and the exact interval closes completely at this
    // depth, so the differential is sharp: the CI must contain a point
    // interval.
    let (sys, defs, ch) = election::election_system(2);
    for (k, &loss) in LOSSES.iter().enumerate() {
        let plan = FaultPlan::new(0xF0110 + k as u64)
            .with_default_loss(loss)
            .unwrap();
        let exact = convergence_exact(&sys, &defs, &plan, ch.follow, 8, &Budget::unlimited())
            .expect("loss-only plan");
        let mc = convergence_mc(
            &sys,
            &defs,
            &plan,
            ch.follow,
            40,
            SAMPLES,
            &Budget::unlimited(),
            &CheckpointCfg::default(),
        )
        .expect("unbudgeted run");
        eprintln!(
            "follow loss={loss}: exact [{:.4}, {:.4}] truncated={:.6}  mc p̂={:.4} ci=[{:.4}, {:.4}]",
            exact.p_lo,
            exact.p_hi,
            exact.truncated_mass(),
            mc.probability,
            mc.ci.0,
            mc.ci.1
        );
        assert_agreement("election n=2 (follow)", loss, &exact, &mc);
        assert!(
            (exact.probability() - (1.0 - loss)).abs() < 1e-6 + exact.truncated_mass(),
            "P(follow) should be 1 − loss, got {} at loss {loss}",
            exact.probability()
        );
    }
}
